//! The byte-stable `wimi-metrics/1` JSONL timeline artifact.
//!
//! Layout, one JSON value per line:
//!
//! ```text
//! {"schema":"wimi-metrics/1","ticks":N,"shards":S,"window":W,"evicted":E}
//! {"tick":0,...,"exhausted":["sess:4"],"shards":[{...},...]}   × N
//! {"agg":{"requests":{"min":..,"max":..,"mean":..,"last":..},...}}
//! {"obs":{...embedded wimi-obs/1 snapshot...}}
//! ```
//!
//! Rendering is hand-rolled with fixed field order and fixed number
//! formatting (`mean` at six decimals), so equal [`Timeline`]s produce
//! byte-identical text — the artifact CI `cmp`s across `WIMI_THREADS`
//! shapes. Wall-clock readings never enter the artifact: span durations
//! live only in the embedded obs snapshot and stay zero under the
//! default `NullClock`, the same exclusion contract as `--obs-wall`.
//!
//! [`parse_and_validate`] is the fail-closed reader: schema tag, exact
//! key order, tick continuity (`first tick == evicted`), per-tick
//! conservation (`completed + shed == requests`, shard sums matching the
//! tick totals), `sess:<id>` cross-link labels that
//! [`wimi_trace::TaskKey::from_label`] accepts, a byte-exact aggregate
//! line, and — for complete (unevicted) timelines — agreement between
//! the tick sums and the embedded snapshot's `serve_*` counters.

use std::fmt::Write as _;

use wimi_obs::json::{self, Json};
use wimi_trace::TaskKey;

use crate::timeline::{ShardSample, TickSample, Timeline, SERIES};
use crate::window::WindowStats;

/// Schema tag stamped into every timeline artifact.
pub const SCHEMA: &str = "wimi-metrics/1";

fn render_shard(s: &ShardSample) -> String {
    format!(
        "{{\"depth\":{},\"peak\":{},\"submitted\":{},\"completed\":{},\"shed\":{}}}",
        s.depth, s.peak, s.submitted, s.completed, s.shed
    )
}

fn render_tick(t: &TickSample) -> String {
    let exhausted: Vec<String> = t
        .exhausted
        .iter()
        .map(|&id| format!("\"{}\"", TaskKey::session(id)))
        .collect();
    let shards: Vec<String> = t.shards.iter().map(render_shard).collect();
    format!(
        "{{\"tick\":{},\"requests\":{},\"completed\":{},\"shed\":{},\"cache_hits\":{},\
         \"cache_misses\":{},\"retry_attempts\":{},\"retries_exhausted\":{},\"svm_batches\":{},\
         \"packets_processed\":{},\"exhausted\":[{}],\"shards\":[{}]}}",
        t.tick,
        t.requests,
        t.completed,
        t.shed,
        t.cache_hits,
        t.cache_misses,
        t.retry_attempts,
        t.retries_exhausted,
        t.svm_batches,
        t.packets_processed,
        exhausted.join(","),
        shards.join(",")
    )
}

fn render_stats(s: &WindowStats) -> String {
    format!(
        "{{\"min\":{},\"max\":{},\"mean\":{:.6},\"last\":{}}}",
        s.min, s.max, s.mean, s.last
    )
}

fn render_agg(timeline: &Timeline) -> String {
    if timeline.ticks.is_empty() {
        return "{\"agg\":null}".to_owned();
    }
    let fields: Vec<String> = SERIES
        .iter()
        .filter_map(|name| {
            timeline
                .aggregate(name)
                .map(|s| format!("\"{name}\":{}", render_stats(&s)))
        })
        .collect();
    format!("{{\"agg\":{{{}}}}}", fields.join(","))
}

/// Renders a timeline to `wimi-metrics/1` JSONL text. `obs_json`, when
/// given, must be the engine recorder's `wimi-obs/1` snapshot export; it
/// is compacted onto the final line (`{"obs":null}` otherwise).
// wlint: artifact
pub fn render(timeline: &Timeline, obs_json: Option<&str>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"ticks\":{},\"shards\":{},\"window\":{},\"evicted\":{}}}",
        timeline.ticks.len(),
        timeline.shards,
        timeline.window,
        timeline.evicted
    );
    for tick in &timeline.ticks {
        let _ = writeln!(out, "{}", render_tick(tick));
    }
    let _ = writeln!(out, "{}", render_agg(timeline));
    match obs_json {
        Some(snapshot) => {
            let _ = writeln!(out, "{{\"obs\":{}}}", json::compact(snapshot));
        }
        None => out.push_str("{\"obs\":null}\n"),
    }
    out
}

// ---------------------------------------------------------------------------
// Fail-closed validation.
// ---------------------------------------------------------------------------

fn as_obj<'a>(v: &'a Json, what: &str) -> Result<&'a Vec<(String, Json)>, String> {
    match v {
        Json::Obj(o) => Ok(o),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn expect_keys(obj: &[(String, Json)], want: &[&str], what: &str) -> Result<(), String> {
    let found: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    if found != want {
        return Err(format!(
            "{what} keys must be exactly {want:?} in order, found {found:?}"
        ));
    }
    Ok(())
}

fn int_field(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: missing or non-integral field \"{key}\""))
}

const TICK_KEYS: [&str; 12] = [
    "tick",
    "requests",
    "completed",
    "shed",
    "cache_hits",
    "cache_misses",
    "retry_attempts",
    "retries_exhausted",
    "svm_batches",
    "packets_processed",
    "exhausted",
    "shards",
];

const SHARD_KEYS: [&str; 5] = ["depth", "peak", "submitted", "completed", "shed"];

fn parse_tick(value: &Json, line_no: usize, shards: u64) -> Result<TickSample, String> {
    let what = format!("line {line_no}");
    let obj = as_obj(value, &what)?;
    expect_keys(obj, &TICK_KEYS, &what)?;
    let mut t = TickSample {
        tick: int_field(value, "tick", &what)?,
        requests: int_field(value, "requests", &what)?,
        completed: int_field(value, "completed", &what)?,
        shed: int_field(value, "shed", &what)?,
        cache_hits: int_field(value, "cache_hits", &what)?,
        cache_misses: int_field(value, "cache_misses", &what)?,
        retry_attempts: int_field(value, "retry_attempts", &what)?,
        retries_exhausted: int_field(value, "retries_exhausted", &what)?,
        svm_batches: int_field(value, "svm_batches", &what)?,
        packets_processed: int_field(value, "packets_processed", &what)?,
        ..TickSample::default()
    };
    if t.completed + t.shed != t.requests {
        return Err(format!(
            "{what}: completed {} + shed {} != requests {}",
            t.completed, t.shed, t.requests
        ));
    }

    // Exhausted-session cross-links: every entry must be a label
    // `TaskKey::from_label` maps back to a session task, ids ascending.
    let Some(Json::Arr(labels)) = value.get("exhausted") else {
        return Err(format!("{what}: \"exhausted\" must be an array"));
    };
    if labels.len() as u64 != t.retries_exhausted {
        return Err(format!(
            "{what}: {} exhausted labels for retries_exhausted {}",
            labels.len(),
            t.retries_exhausted
        ));
    }
    for label in labels {
        let Some(text) = label.as_str() else {
            return Err(format!("{what}: exhausted entries must be strings"));
        };
        let Some(key) = TaskKey::from_label(text) else {
            return Err(format!("{what}: \"{text}\" is not a task label"));
        };
        if key != TaskKey::session(key.id) {
            return Err(format!("{what}: \"{text}\" is not a session task"));
        }
        if let Some(&prev) = t.exhausted.last() {
            if key.id < prev {
                return Err(format!("{what}: exhausted sessions out of order"));
            }
        }
        t.exhausted.push(key.id);
    }

    // Per-shard breakdown: the shard sums must reproduce the tick
    // totals (everything accepted this tick is drained this tick).
    let Some(Json::Arr(rows)) = value.get("shards") else {
        return Err(format!("{what}: \"shards\" must be an array"));
    };
    if rows.len() as u64 != shards {
        return Err(format!(
            "{what}: {} shard entries for {} shards",
            rows.len(),
            shards
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        let swhat = format!("{what} shard {i}");
        let obj = as_obj(row, &swhat)?;
        expect_keys(obj, &SHARD_KEYS, &swhat)?;
        let s = ShardSample {
            depth: int_field(row, "depth", &swhat)?,
            peak: int_field(row, "peak", &swhat)?,
            submitted: int_field(row, "submitted", &swhat)?,
            completed: int_field(row, "completed", &swhat)?,
            shed: int_field(row, "shed", &swhat)?,
        };
        if s.depth > s.peak {
            return Err(format!("{swhat}: depth {} > peak {}", s.depth, s.peak));
        }
        t.shards.push(s);
    }
    let submitted: u64 = t.shards.iter().map(|s| s.submitted).sum();
    if submitted != t.completed {
        return Err(format!(
            "{what}: shard submitted sum {submitted} != completed {}",
            t.completed
        ));
    }
    let shard_shed: u64 = t.shards.iter().map(|s| s.shed).sum();
    if shard_shed != t.shed {
        return Err(format!(
            "{what}: shard shed sum {shard_shed} != shed {}",
            t.shed
        ));
    }
    Ok(t)
}

fn check_obs(obs: &Json, timeline: &Timeline) -> Result<(), String> {
    wimi_obs::validate_value(obs).map_err(|e| format!("embedded obs snapshot: {e}"))?;
    // A windowed timeline lost history, so tick sums no longer cover the
    // run; only complete timelines are cross-checked against the
    // run-cumulative counters.
    if timeline.evicted > 0 {
        return Ok(());
    }
    let counter = |name: &str| -> Result<u64, String> {
        obs.get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("embedded obs snapshot: missing counter \"{name}\""))
    };
    let sum =
        |series: &str| -> u64 { timeline.ticks.iter().filter_map(|t| t.series(series)).sum() };
    for (counter_name, series) in [
        ("serve_requests", "requests"),
        ("serve_shed", "shed"),
        ("serve_batches", "svm_batches"),
        ("model_cache_hits", "cache_hits"),
        ("model_cache_misses", "cache_misses"),
    ] {
        let have = counter(counter_name)?;
        let want = sum(series);
        if have != want {
            return Err(format!(
                "obs counter {counter_name} is {have} but the ticks sum to {want}"
            ));
        }
    }
    let peak = counter("serve_queue_peak")?;
    let tick_peak = timeline
        .ticks
        .iter()
        .map(TickSample::queue_peak)
        .max()
        .unwrap_or(0);
    if peak != tick_peak {
        return Err(format!(
            "obs counter serve_queue_peak is {peak} but the ticks peak at {tick_peak}"
        ));
    }
    Ok(())
}

/// Parses and validates a `wimi-metrics/1` artifact, returning the
/// timeline it carries. Fail-closed: anything unexpected — a stray key,
/// a broken conservation sum, a gap in the tick sequence, an aggregate
/// line that does not byte-match the recomputation, counters that
/// disagree with the embedded snapshot — is an error, not a skip.
pub fn parse_and_validate(text: &str) -> Result<Timeline, String> {
    let mut lines = text.lines().enumerate();

    let Some((_, header_line)) = lines.next() else {
        return Err("truncated artifact: missing header line".into());
    };
    let header = json::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
    match header.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        Some(other) => {
            return Err(format!(
                "schema version mismatch: artifact declares \"{other}\" but this validator understands \"{SCHEMA}\""
            ))
        }
        None => return Err("line 1: missing schema field".into()),
    }
    expect_keys(
        as_obj(&header, "header")?,
        &["schema", "ticks", "shards", "window", "evicted"],
        "header",
    )?;
    let tick_count = int_field(&header, "ticks", "header")?;
    let shards = int_field(&header, "shards", "header")?;
    let window = int_field(&header, "window", "header")?;
    let evicted = int_field(&header, "evicted", "header")?;
    if tick_count > window {
        return Err(format!(
            "header: {tick_count} ticks exceed the window capacity {window}"
        ));
    }

    let mut ticks = Vec::new();
    for i in 0..tick_count {
        let Some((idx, line)) = lines.next() else {
            return Err(format!(
                "truncated artifact: {} of {tick_count} tick lines",
                i
            ));
        };
        let line_no = idx + 1;
        let value = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let tick = parse_tick(&value, line_no, shards)?;
        let want = evicted + i;
        if tick.tick != want {
            return Err(format!(
                "line {line_no}: tick {} breaks continuity (expected {want})",
                tick.tick
            ));
        }
        ticks.push(tick);
    }

    let timeline = Timeline {
        shards: shards as usize,
        window: window as usize,
        evicted,
        ticks,
    };

    let Some((_, agg_line)) = lines.next() else {
        return Err("truncated artifact: missing the {\"agg\": ...} line".into());
    };
    let expected = render_agg(&timeline);
    if agg_line != expected {
        return Err(format!(
            "aggregate line does not match the recomputation from the ticks: {agg_line}"
        ));
    }

    let Some((idx, obs_line)) = lines.next() else {
        return Err("truncated artifact: missing the final {\"obs\": ...} line".into());
    };
    let obs_no = idx + 1;
    let value = json::parse(obs_line).map_err(|e| format!("line {obs_no}: {e}"))?;
    let Some(obs) = value.get("obs") else {
        return Err(format!("line {obs_no}: expected the {{\"obs\": ...}} line"));
    };
    expect_keys(as_obj(&value, "obs line")?, &["obs"], "obs line")?;
    if !matches!(obs, Json::Null) {
        check_obs(obs, &timeline)?;
    }

    if let Some((idx, _)) = lines.next() {
        return Err(format!(
            "line {}: data after the final {{\"obs\": ...}} line",
            idx + 1
        ));
    }
    Ok(timeline)
}

/// Compares two validated artifacts and names the first difference —
/// header shape, then the first tick (and shard) whose series diverge,
/// then the embedded snapshots. `Ok` means no compared field differs.
pub fn diff(a_text: &str, b_text: &str) -> Result<(), String> {
    let a = parse_and_validate(a_text).map_err(|e| format!("first artifact: {e}"))?;
    let b = parse_and_validate(b_text).map_err(|e| format!("second artifact: {e}"))?;
    for (name, va, vb) in [
        ("shards", a.shards as u64, b.shards as u64),
        ("window", a.window as u64, b.window as u64),
        ("evicted", a.evicted, b.evicted),
        ("ticks", a.ticks.len() as u64, b.ticks.len() as u64),
    ] {
        if va != vb {
            return Err(format!("header {name} differs: {va} vs {vb}"));
        }
    }
    for (ta, tb) in a.ticks.iter().zip(&b.ticks) {
        if ta.tick != tb.tick {
            return Err(format!(
                "tick numbering differs: {} vs {}",
                ta.tick, tb.tick
            ));
        }
        for name in SERIES {
            let (va, vb) = (ta.series(name), tb.series(name));
            if va != vb {
                return Err(format!(
                    "tick {}: {name} differs: {} vs {}",
                    ta.tick,
                    va.unwrap_or(0),
                    vb.unwrap_or(0)
                ));
            }
        }
        if ta.exhausted != tb.exhausted {
            return Err(format!("tick {}: exhausted sessions differ", ta.tick));
        }
        for (i, (sa, sb)) in ta.shards.iter().zip(&tb.shards).enumerate() {
            if sa != sb {
                return Err(format!("tick {} shard {i}: samples differ", ta.tick));
            }
        }
    }
    let last = |text: &str| text.lines().last().unwrap_or("").to_owned();
    if last(a_text) != last(b_text) {
        return Err("embedded obs snapshots differ".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::TickCollector;

    fn sample_timeline() -> Timeline {
        let mut c = TickCollector::new(2, 8);
        for tick in 0..3u64 {
            c.push(TickSample {
                tick,
                requests: 5,
                completed: 4,
                shed: 1,
                cache_hits: if tick == 0 { 0 } else { 2 },
                cache_misses: if tick == 0 { 2 } else { 0 },
                retry_attempts: 5,
                retries_exhausted: 1,
                svm_batches: 2,
                packets_processed: 64,
                exhausted: vec![3],
                shards: vec![
                    ShardSample {
                        depth: 2,
                        peak: 2,
                        submitted: 2,
                        completed: 2,
                        shed: 1,
                    },
                    ShardSample {
                        depth: 2,
                        peak: 3,
                        submitted: 2,
                        completed: 2,
                        shed: 0,
                    },
                ],
            });
        }
        c.finish()
    }

    #[test]
    fn artifact_round_trips_through_the_validator() {
        let tl = sample_timeline();
        let text = render(&tl, None);
        let parsed = parse_and_validate(&text).unwrap_or_else(|e| panic!("must validate: {e}"));
        assert_eq!(parsed, tl);
        assert_eq!(render(&parsed, None), text);
    }

    #[test]
    fn validator_fails_closed() {
        let text = render(&sample_timeline(), None);
        // Wrong schema names both versions.
        let err = parse_and_validate(&text.replace("wimi-metrics/1", "wimi-metrics/2"))
            .expect_err("schema");
        assert!(
            err.contains("wimi-metrics/2") && err.contains("wimi-metrics/1"),
            "{err}"
        );
        // Broken conservation.
        assert!(parse_and_validate(&text.replace("\"shed\":1,", "\"shed\":2,")).is_err());
        // A truncated artifact, and trailing garbage.
        let lines: Vec<&str> = text.lines().collect();
        assert!(parse_and_validate(&lines[..2].join("\n")).is_err());
        assert!(parse_and_validate(&format!("{text}{{}}\n")).is_err());
        // A gap in the tick sequence.
        assert!(parse_and_validate(&text.replacen("\"tick\":1", "\"tick\":7", 1)).is_err());
        // A label the trace layer would not accept.
        assert!(parse_and_validate(&text.replace("sess:3", "gremlin:3")).is_err());
        // An exhausted list shorter than its count.
        assert!(parse_and_validate(&text.replace("[\"sess:3\"]", "[]")).is_err());
        // A tampered aggregate line.
        assert!(parse_and_validate(&text.replacen(
            "\"agg\":{\"requests\":{\"min\":5",
            "\"agg\":{\"requests\":{\"min\":4",
            1
        ))
        .is_err());
    }

    #[test]
    fn empty_timelines_render_a_null_aggregate() {
        let tl = TickCollector::new(3, 4).finish();
        let text = render(&tl, None);
        assert!(text.contains("{\"agg\":null}"));
        let parsed = parse_and_validate(&text).unwrap_or_else(|e| panic!("{e}"));
        assert!(parsed.ticks.is_empty());
    }

    #[test]
    fn diff_names_the_first_differing_tick() {
        let a = sample_timeline();
        let mut b = a.clone();
        b.ticks[1].shed += 1;
        b.ticks[1].completed -= 1;
        b.ticks[1].shards[0].shed += 1;
        b.ticks[1].shards[0].submitted -= 1;
        b.ticks[1].shards[0].completed -= 1;
        let err = diff(&render(&a, None), &render(&b, None)).expect_err("must differ");
        assert!(err.starts_with("tick 1:"), "{err}");
        assert!(diff(&render(&a, None), &render(&a, None)).is_ok());
    }

    #[test]
    fn obs_cross_check_gates_complete_timelines() {
        let tl = sample_timeline();
        let rec = wimi_obs::Recorder::enabled();
        let add = |c, n| rec.add(c, n);
        add(wimi_obs::CounterId::ServeRequests, 15);
        add(wimi_obs::CounterId::ServeShed, 3);
        add(wimi_obs::CounterId::ServeBatches, 6);
        add(wimi_obs::CounterId::ModelCacheHits, 4);
        add(wimi_obs::CounterId::ModelCacheMisses, 2);
        add(wimi_obs::CounterId::ServeQueuePeak, 3);
        let obs = rec.snapshot().to_json();
        let text = render(&tl, Some(&obs));
        parse_and_validate(&text).unwrap_or_else(|e| panic!("must validate: {e}"));
        // A counter that disagrees with the tick sums fails closed.
        let bad = text.replace("\"serve_shed\":3", "\"serve_shed\":4");
        assert!(parse_and_validate(&bad).is_err());
    }
}
