//! Bounded ring-buffer windows and the windowed aggregate statistics
//! every timeline series reports.

use std::collections::VecDeque;

/// A bounded FIFO window: a push past the capacity evicts the oldest
/// entry and counts it, so a long-lived fleet holds at most `capacity`
/// ticks of telemetry while still knowing exactly how much history it
/// dropped. Capacity clamps to one — a zero-capacity window would make
/// every aggregate vacuous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingWindow<T> {
    capacity: usize,
    buf: VecDeque<T>,
    evicted: u64,
}

impl<T> RingWindow<T> {
    /// An empty window holding at most `capacity.max(1)` entries.
    pub fn new(capacity: usize) -> RingWindow<T> {
        RingWindow {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Appends `value`, evicting (and counting) the oldest entry when
    /// the window is already full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(value);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The (clamped) capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Iterates oldest → newest over the retained entries.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

/// Windowed aggregate of one integer series: the four statistics every
/// timeline series reports. `mean` is the only non-integer and is
/// rendered at fixed six-decimal precision, keeping artifacts
/// byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Smallest value in the window.
    pub min: u64,
    /// Largest value in the window.
    pub max: u64,
    /// Arithmetic mean over the window.
    pub mean: f64,
    /// Most recent value.
    pub last: u64,
}

impl WindowStats {
    /// Aggregates `values`; `None` for an empty series.
    pub fn over(values: impl Iterator<Item = u64>) -> Option<WindowStats> {
        let mut n = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut last = 0u64;
        for v in values {
            n += 1;
            sum = sum.saturating_add(v);
            min = min.min(v);
            max = max.max(v);
            last = v;
        }
        if n == 0 {
            return None;
        }
        Some(WindowStats {
            min,
            max,
            mean: sum as f64 / n as f64,
            last,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nothing_evicts_below_capacity() {
        let mut w = RingWindow::new(3);
        for i in 0..3 {
            w.push(i);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.evicted(), 0);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn eviction_starts_exactly_at_the_capacity_boundary() {
        // The boundary case the windowed aggregates depend on: the
        // capacity-th push must NOT evict, the (capacity+1)-th must.
        let mut w = RingWindow::new(4);
        for i in 0..4 {
            w.push(i);
            assert_eq!(w.evicted(), 0, "push {i} is within capacity");
        }
        w.push(4);
        assert_eq!(w.evicted(), 1);
        assert_eq!(w.len(), 4);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        w.push(5);
        assert_eq!(w.evicted(), 2);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut w = RingWindow::new(0);
        assert_eq!(w.capacity(), 1);
        w.push(7);
        w.push(9);
        assert_eq!(w.len(), 1);
        assert_eq!(w.evicted(), 1);
        assert_eq!(w.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn stats_cover_min_max_mean_last() {
        let s = WindowStats::over([3u64, 1, 2].into_iter()).unwrap_or(WindowStats {
            min: 0,
            max: 0,
            mean: 0.0,
            last: 0,
        });
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.last, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(WindowStats::over(std::iter::empty()).is_none());
    }
}
