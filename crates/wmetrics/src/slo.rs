//! Declarative service-level objectives over a fleet timeline.
//!
//! A policy file is line-oriented: blank lines and `#` comments are
//! skipped, every other line is one directive:
//!
//! ```text
//! max_shed_fraction 0.10        # shed / requests per tick
//! max_queue_peak 8              # hottest shard's per-tick peak
//! retry_exhaustion_budget 2     # cumulative across the run
//! min_accuracy Lab 0.80         # per-environment accuracy floor
//! ```
//!
//! Evaluation is fail-closed: an objective that cannot be measured (an
//! environment floor with no sessions in that environment) is a breach,
//! not a skip, and every tick-scoped breach names the first tick that
//! crossed the line so regressions are attributable.

use crate::report::SessionRow;
use crate::timeline::Timeline;

/// A parsed SLO policy. Every field is optional — an objective absent
/// from the policy file is simply not evaluated — but an empty policy
/// is a parse error (gating on nothing is always a misconfiguration).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloPolicy {
    /// Per-tick bound on `shed / requests` (ticks with zero requests
    /// never breach).
    pub max_shed_fraction: Option<f64>,
    /// Per-tick bound on the hottest shard's queue peak.
    pub max_queue_peak: Option<u64>,
    /// Bound on cumulative retry exhaustions across the retained ticks.
    pub retry_exhaustion_budget: Option<u64>,
    /// Per-environment accuracy floors, `(environment, floor)`.
    pub min_accuracy: Vec<(String, f64)>,
}

impl SloPolicy {
    fn is_empty(&self) -> bool {
        self.max_shed_fraction.is_none()
            && self.max_queue_peak.is_none()
            && self.retry_exhaustion_budget.is_none()
            && self.min_accuracy.is_empty()
    }
}

/// One violated objective: which rule, the first breaching tick (for
/// tick-scoped rules), and a human-readable message with the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// The directive name that was violated.
    pub rule: String,
    /// First tick at which the objective was violated, when tick-scoped.
    pub tick: Option<u64>,
    /// Diagnostic naming the observed and allowed values.
    pub message: String,
}

fn parse_fraction(value: &str, line_no: usize, what: &str) -> Result<f64, String> {
    let parsed: f64 = value
        .parse()
        .map_err(|_| format!("line {line_no}: {what} wants a number, got \"{value}\""))?;
    if !parsed.is_finite() || !(0.0..=1.0).contains(&parsed) {
        return Err(format!(
            "line {line_no}: {what} must be a fraction in [0, 1], got {value}"
        ));
    }
    Ok(parsed)
}

fn parse_count(value: &str, line_no: usize, what: &str) -> Result<u64, String> {
    value.parse().map_err(|_| {
        format!("line {line_no}: {what} wants a non-negative integer, got \"{value}\"")
    })
}

/// Parses a policy file. Unknown directives, malformed values,
/// duplicate directives, and empty policies are errors with `line N:`
/// diagnostics.
pub fn parse_policy(text: &str) -> Result<SloPolicy, String> {
    let mut policy = SloPolicy::default();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = line.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match (directive, rest.as_slice()) {
            ("max_shed_fraction", [value]) => {
                if policy.max_shed_fraction.is_some() {
                    return Err(format!("line {line_no}: duplicate max_shed_fraction"));
                }
                policy.max_shed_fraction = Some(parse_fraction(value, line_no, directive)?);
            }
            ("max_queue_peak", [value]) => {
                if policy.max_queue_peak.is_some() {
                    return Err(format!("line {line_no}: duplicate max_queue_peak"));
                }
                policy.max_queue_peak = Some(parse_count(value, line_no, directive)?);
            }
            ("retry_exhaustion_budget", [value]) => {
                if policy.retry_exhaustion_budget.is_some() {
                    return Err(format!("line {line_no}: duplicate retry_exhaustion_budget"));
                }
                policy.retry_exhaustion_budget = Some(parse_count(value, line_no, directive)?);
            }
            ("min_accuracy", [env, value]) => {
                if policy.min_accuracy.iter().any(|(e, _)| e == env) {
                    return Err(format!("line {line_no}: duplicate min_accuracy for {env}"));
                }
                policy.min_accuracy.push((
                    (*env).to_owned(),
                    parse_fraction(value, line_no, directive)?,
                ));
            }
            _ => {
                return Err(format!(
                    "line {line_no}: unknown or malformed directive \"{line}\""
                ))
            }
        }
    }
    if policy.is_empty() {
        return Err("policy declares no objectives".into());
    }
    Ok(policy)
}

/// Evaluates every declared objective against a timeline and the fleet
/// summary's session rows, returning all breaches (empty = pass).
pub fn evaluate(policy: &SloPolicy, timeline: &Timeline, rows: &[SessionRow]) -> Vec<Breach> {
    let mut breaches = Vec::new();

    if let Some(frac) = policy.max_shed_fraction {
        if let Some(t) = timeline
            .ticks
            .iter()
            .find(|t| t.requests > 0 && t.shed as f64 > frac * t.requests as f64)
        {
            breaches.push(Breach {
                rule: "max_shed_fraction".into(),
                tick: Some(t.tick),
                message: format!(
                    "tick {}: shed {} of {} requests exceeds the allowed fraction {frac}",
                    t.tick, t.shed, t.requests
                ),
            });
        }
    }

    if let Some(cap) = policy.max_queue_peak {
        if let Some(t) = timeline.ticks.iter().find(|t| t.queue_peak() > cap) {
            breaches.push(Breach {
                rule: "max_queue_peak".into(),
                tick: Some(t.tick),
                message: format!(
                    "tick {}: queue peak {} exceeds the allowed {cap}",
                    t.tick,
                    t.queue_peak()
                ),
            });
        }
    }

    if let Some(budget) = policy.retry_exhaustion_budget {
        let mut cumulative = 0u64;
        for t in &timeline.ticks {
            cumulative += t.retries_exhausted;
            if cumulative > budget {
                breaches.push(Breach {
                    rule: "retry_exhaustion_budget".into(),
                    tick: Some(t.tick),
                    message: format!(
                        "tick {}: {cumulative} cumulative retry exhaustions exceed the budget {budget}",
                        t.tick
                    ),
                });
                break;
            }
        }
    }

    for (env, floor) in &policy.min_accuracy {
        let mut ok = 0u64;
        let mut correct = 0u64;
        let mut present = false;
        for row in rows.iter().filter(|r| &r.environment == env) {
            present = true;
            ok += row.ok;
            correct += row.correct;
        }
        if !present {
            breaches.push(Breach {
                rule: "min_accuracy".into(),
                tick: None,
                message: format!(
                    "no sessions ran in environment {env}; cannot attest the floor {floor}"
                ),
            });
            continue;
        }
        let accuracy = if ok == 0 {
            0.0
        } else {
            correct as f64 / ok as f64
        };
        if accuracy < *floor {
            breaches.push(Breach {
                rule: "min_accuracy".into(),
                tick: None,
                message: format!(
                    "environment {env}: accuracy {accuracy:.6} ({correct}/{ok}) is below the floor {floor}"
                ),
            });
        }
    }

    breaches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::{ShardSample, TickSample};

    fn timeline(ticks: Vec<TickSample>) -> Timeline {
        Timeline {
            shards: 1,
            window: 16,
            evicted: 0,
            ticks,
        }
    }

    fn tick(n: u64, requests: u64, shed: u64, peak: u64, exhausted: u64) -> TickSample {
        TickSample {
            tick: n,
            requests,
            completed: requests - shed,
            shed,
            retries_exhausted: exhausted,
            shards: vec![ShardSample {
                depth: 0,
                peak,
                submitted: requests - shed,
                completed: requests - shed,
                shed,
            }],
            ..TickSample::default()
        }
    }

    fn row(env: &str, ok: u64, correct: u64) -> SessionRow {
        SessionRow {
            id: 0,
            environment: env.to_owned(),
            material: "Milk".to_owned(),
            ok,
            failed: 0,
            shed: 0,
            correct,
            packets_spent: ok * 10,
        }
    }

    #[test]
    fn policies_parse_and_reject_garbage() {
        let p = parse_policy(
            "# fleet gate\nmax_shed_fraction 0.25\nmax_queue_peak 8 # hot shard\n\nretry_exhaustion_budget 2\nmin_accuracy Lab 0.8\nmin_accuracy Hall 0.5\n",
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(p.max_shed_fraction, Some(0.25));
        assert_eq!(p.max_queue_peak, Some(8));
        assert_eq!(p.retry_exhaustion_budget, Some(2));
        assert_eq!(p.min_accuracy.len(), 2);

        for bad in [
            "",
            "# only comments\n",
            "max_shed_fraction 1.5\n",
            "max_shed_fraction nope\n",
            "max_queue_peak -1\n",
            "min_accuracy Lab\n",
            "min_accuracy Lab 0.5\nmin_accuracy Lab 0.6\n",
            "max_queue_peak 3\nmax_queue_peak 4\n",
            "frobnicate 7\n",
        ] {
            assert!(parse_policy(bad).is_err(), "{bad:?} must not parse");
        }
        // Diagnostics carry the line number.
        let err = parse_policy("max_queue_peak 3\nbogus\n").expect_err("bogus line");
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn breaches_name_the_first_breaching_tick() {
        let tl = timeline(vec![
            tick(0, 4, 0, 2, 0),
            tick(1, 4, 3, 9, 1),
            tick(2, 4, 4, 9, 3),
        ]);
        let policy =
            parse_policy("max_shed_fraction 0.5\nmax_queue_peak 8\nretry_exhaustion_budget 2\n")
                .unwrap_or_else(|e| panic!("{e}"));
        let breaches = evaluate(&policy, &tl, &[]);
        assert_eq!(breaches.len(), 3);
        assert_eq!(breaches[0].rule, "max_shed_fraction");
        assert_eq!(breaches[0].tick, Some(1));
        assert_eq!(breaches[1].tick, Some(1));
        // Budget of 2 survives tick 1 (cumulative 1) and trips at tick 2.
        assert_eq!(breaches[2].tick, Some(2));
        assert!(
            breaches[2].message.contains("tick 2"),
            "{}",
            breaches[2].message
        );
    }

    #[test]
    fn accuracy_floors_are_fail_closed_per_environment() {
        let rows = vec![row("Lab", 4, 4), row("Lab", 4, 2), row("Hall", 2, 0)];
        let policy =
            parse_policy("min_accuracy Lab 0.7\nmin_accuracy Hall 0.5\nmin_accuracy Library 0.1\n")
                .unwrap_or_else(|e| panic!("{e}"));
        let breaches = evaluate(&policy, &timeline(Vec::new()), &rows);
        // Lab: 6/8 = 0.75 passes. Hall: 0/2 breaches. Library: absent.
        assert_eq!(breaches.len(), 2);
        assert!(
            breaches[0].message.contains("Hall"),
            "{}",
            breaches[0].message
        );
        assert!(
            breaches[1].message.contains("Library"),
            "{}",
            breaches[1].message
        );
        assert_eq!(breaches[0].tick, None);
    }

    #[test]
    fn a_clean_run_produces_no_breaches() {
        let tl = timeline(vec![tick(0, 4, 0, 2, 0)]);
        let rows = vec![row("Lab", 4, 4)];
        let policy =
            parse_policy("max_shed_fraction 0.1\nmax_queue_peak 4\nmin_accuracy Lab 0.9\n")
                .unwrap_or_else(|e| panic!("{e}"));
        assert!(evaluate(&policy, &tl, &rows).is_empty());
    }
}
