//! k-nearest-neighbour baseline classifier.

use crate::dataset::Dataset;

/// A k-NN classifier over Euclidean distance (used as the classifier
/// ablation baseline against the SVM).
///
/// # Examples
///
/// ```
/// use wimi_ml::dataset::Dataset;
/// use wimi_ml::knn::KnnClassifier;
///
/// let mut ds = Dataset::new(vec!["lo".into(), "hi".into()]);
/// for i in 0..5 {
///     ds.push(vec![i as f64 * 0.1], 0);
///     ds.push(vec![4.0 + i as f64 * 0.1], 1);
/// }
/// let knn = KnnClassifier::fit(ds, 3);
/// assert_eq!(knn.predict(&[0.3]), 0);
/// assert_eq!(knn.predict(&[4.1]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    train: Dataset,
    k: usize,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the training-set size, or the
    /// training set is empty.
    pub fn fit(train: Dataset, k: usize) -> Self {
        assert!(!train.is_empty(), "training set must be non-empty");
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= train.len(), "k exceeds training-set size");
        KnnClassifier { train, k }
    }

    /// Predicts by majority vote of the `k` nearest training samples;
    /// ties break towards the closer class (summed inverse distance).
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the training data.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.train.dim(), "query dimension mismatch");
        let mut dists: Vec<(f64, usize)> = (0..self.train.len())
            .map(|i| {
                let (xi, yi) = self.train.sample(i);
                let d2: f64 = xi.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, yi)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut votes = vec![0usize; self.train.n_classes()];
        let mut weight = vec![0.0f64; self.train.n_classes()];
        for &(d2, y) in dists.iter().take(self.k) {
            votes[y] += 1;
            weight[y] += 1.0 / (d2.sqrt() + 1e-12);
        }
        (0..votes.len())
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(weight[i].total_cmp(&weight[j]))
            })
            .unwrap_or(0)
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// The neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..6 {
            ds.push(vec![i as f64 * 0.1, 0.0], 0);
            ds.push(vec![5.0 + i as f64 * 0.1, 0.0], 1);
        }
        ds
    }

    #[test]
    fn classifies_clear_cases() {
        let knn = KnnClassifier::fit(toy(), 3);
        assert_eq!(knn.predict(&[0.2, 0.0]), 0);
        assert_eq!(knn.predict(&[5.2, 0.0]), 1);
        assert_eq!(knn.k(), 3);
    }

    #[test]
    fn k1_memorises_training_points() {
        let ds = toy();
        let knn = KnnClassifier::fit(ds.clone(), 1);
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            assert_eq!(knn.predict(x), y);
        }
    }

    #[test]
    fn batch_matches_single() {
        let knn = KnnClassifier::fit(toy(), 3);
        let queries = vec![vec![0.1, 0.0], vec![5.4, 0.0]];
        assert_eq!(knn.predict_batch(&queries), vec![0, 1]);
    }

    #[test]
    fn tie_breaks_towards_closer_class() {
        // k = 2 with one neighbour from each class: the nearer one wins.
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        ds.push(vec![0.0], 0);
        ds.push(vec![1.0], 1);
        let knn = KnnClassifier::fit(ds, 2);
        assert_eq!(knn.predict(&[0.2]), 0);
        assert_eq!(knn.predict(&[0.8]), 1);
    }

    #[test]
    #[should_panic(expected = "k exceeds")]
    fn rejects_oversized_k() {
        let _ = KnnClassifier::fit(toy(), 100);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_bad_query() {
        let knn = KnnClassifier::fit(toy(), 1);
        let _ = knn.predict(&[1.0]);
    }
}
