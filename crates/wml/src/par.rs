//! Zero-dependency parallel fan-out on scoped threads.
//!
//! The build environment cannot pull external crates (no rayon), so this
//! module provides the one primitive the workspace needs: an order-
//! preserving parallel map over a slice, built on [`std::thread::scope`].
//! It is used by the one-vs-one SVM trainer in this crate, re-exported as
//! `wimi_core::par` for the extraction pipeline, and consumed by the
//! experiment harness for the (trial × material) measurement fan-out.
//!
//! # Thread count
//!
//! The worker count comes from the `WIMI_THREADS` environment variable
//! when set (minimum 1), otherwise from
//! [`std::thread::available_parallelism`]. Callers must not bake the
//! thread count into results: every parallel site in the workspace derives
//! its per-item randomness from per-item seeds, so output is bitwise
//! identical for any `WIMI_THREADS` value.
//!
//! # Panics
//!
//! A panic inside a worker is forwarded to the caller (the scope joins all
//! workers first), so `map` behaves like the equivalent serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The configured maximum worker count: `WIMI_THREADS` if set and ≥ 1,
/// else [`std::thread::available_parallelism`].
pub fn max_threads() -> usize {
    match std::env::var("WIMI_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// output. `f` receives `(index, &item)`.
///
/// Work is distributed dynamically: each worker claims the next unclaimed
/// index from a shared atomic counter, so uneven per-item cost balances
/// itself. With one worker (or one item) this degrades to a plain serial
/// loop with no thread spawn.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = max_threads().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Like [`map`] over a range of indices `0..n` with no backing slice.
pub fn map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, |_, &x| x).is_empty());
        assert_eq!(map(&[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn map_indices_counts() {
        assert_eq!(map_indices(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<usize> = (0..64).collect();
            map(&items, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }
}
