//! Zero-dependency parallel fan-out on scoped threads.
//!
//! The build environment cannot pull external crates (no rayon), so this
//! module provides the one primitive the workspace needs: an order-
//! preserving parallel map over a slice, built on [`std::thread::scope`].
//! It is used by the one-vs-one SVM trainer in this crate, re-exported as
//! `wimi_core::par` for the extraction pipeline, and consumed by the
//! experiment harness for the (trial × material) measurement fan-out.
//!
//! # Thread count
//!
//! The worker count comes from the `WIMI_THREADS` environment variable
//! when set to a parseable positive integer (`0` clamps to 1), otherwise
//! from [`std::thread::available_parallelism`]. An unset *or unparseable*
//! value (empty, garbage) falls through to the same default — it must
//! never silently serialise the pipeline. Callers must not bake the
//! thread count into results: every parallel site in the workspace derives
//! its per-item randomness from per-item seeds, so output is bitwise
//! identical for any `WIMI_THREADS` value.
//!
//! Both variables are read from the environment **once per process** (the
//! service layer calls [`max_threads`] from long-lived workers, where a
//! fresh `std::env::var` per request would be both overhead and a
//! nondeterminism hazard under a mutable environment). In-process callers
//! that need to vary the fan-out shape — benches, the thread-invariance
//! tests — use [`set_thread_override`]/[`set_chunk_override`] instead of
//! mutating the environment; the CI determinism jobs keep working
//! unchanged because they run `WIMI_THREADS=1` and `=4` as separate
//! processes.
//!
//! # Chunking
//!
//! Workers claim *chunks* of consecutive indices rather than single items,
//! so cheap items don't pay one atomic claim (and its cache-line bounce)
//! each. The chunk size comes from the `WIMI_CHUNK` environment variable
//! when set to a parseable positive integer (`0` clamps to 1), otherwise
//! from [`default_chunk`], which leaves a few claims per worker for load
//! balancing. Chunking only changes how indices are handed out — outputs
//! are identical for any chunk size.
//!
//! # Panics
//!
//! A panic inside a worker is forwarded to the caller (the scope joins all
//! workers first), so `map` behaves like the equivalent serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Parses one fan-out environment value. `None` — unset, empty, or
/// unparseable — means "use the documented default"; a parsed `0` clamps
/// to 1. Surrounding whitespace is ignored.
///
/// (An earlier revision collapsed unparseable values to `1` via
/// `unwrap_or(1)`, silently serialising the whole pipeline on a typo like
/// `WIMI_THREADS=abc`; the regression tests below pin the fall-through.)
fn parse_fanout_env(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
}

/// `WIMI_THREADS`/`WIMI_CHUNK` as read once at first use.
static THREADS_ENV: OnceLock<Option<usize>> = OnceLock::new();
static CHUNK_ENV: OnceLock<Option<usize>> = OnceLock::new();

/// In-process overrides (0 = none). These exist so benches and the
/// thread-invariance tests can vary the fan-out shape without mutating
/// the (now cached) environment.
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static CHUNK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn threads_env() -> Option<usize> {
    *THREADS_ENV.get_or_init(|| parse_fanout_env(std::env::var("WIMI_THREADS").ok().as_deref()))
}

fn chunk_env() -> Option<usize> {
    *CHUNK_ENV.get_or_init(|| parse_fanout_env(std::env::var("WIMI_CHUNK").ok().as_deref()))
}

/// Forces the worker count for this process, taking precedence over the
/// cached `WIMI_THREADS` value; `None` restores environment/default
/// behaviour. Outputs are thread-count invariant by contract, so this is
/// a shape control (for benches and invariance tests), never a results
/// control.
pub fn set_thread_override(n: Option<usize>) {
    THREADS_OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Forces the fan-out chunk size for this process, taking precedence over
/// the cached `WIMI_CHUNK` value; `None` restores environment/default
/// behaviour.
pub fn set_chunk_override(n: Option<usize>) {
    CHUNK_OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The configured maximum worker count: the in-process override if set,
/// else `WIMI_THREADS` if parseable (≥ 1), else
/// [`std::thread::available_parallelism`].
pub fn max_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => threads_env()
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        n => n,
    }
}

/// The default fan-out chunk size for `n` items over `workers` workers:
/// big enough to amortise the atomic claim, small enough to leave roughly
/// four claims per worker for dynamic load balancing.
pub fn default_chunk(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * 4)).max(1)
}

/// The configured chunk size for `n` items over `workers` workers: the
/// in-process override if set, else `WIMI_CHUNK` if parseable (≥ 1), else
/// [`default_chunk`].
fn chunk_size(n: usize, workers: usize) -> usize {
    match CHUNK_OVERRIDE.load(Ordering::Relaxed) {
        0 => chunk_env().unwrap_or_else(|| default_chunk(n, workers)),
        c => c,
    }
}

/// Maps `f` over `items` in parallel, preserving input order in the
/// output. `f` receives `(index, &item)`.
///
/// Work is distributed dynamically: each worker claims the next unclaimed
/// chunk of consecutive indices from a shared atomic counter, so uneven
/// per-item cost balances itself. With one worker (or one item) this
/// degrades to a plain serial loop with no thread spawn.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = max_threads().min(items.len());
    map_chunked(items, workers, chunk_size(items.len(), workers), f)
}

/// The deterministic core of [`map`], with explicit worker count and chunk
/// size ([`map`] fills both in from the environment). Outputs are
/// identical for every `(workers, chunk)` combination.
pub fn map_chunked<T, R, F>(items: &[T], workers: usize, chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = chunk.max(1);

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        for (i, item) in items[start..end].iter().enumerate() {
                            let i = start + i;
                            out.push((i, f(i, item)));
                        }
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => indexed.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Like [`map`] over a range of indices `0..n` with no backing slice.
pub fn map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(map(&empty, |_, &x| x).is_empty());
        assert_eq!(map(&[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn map_indices_counts() {
        assert_eq!(map_indices(4, |i| i * i), vec![0, 1, 4, 9]);
    }

    #[test]
    fn chunked_map_matches_serial_for_any_worker_chunk_combination() {
        let items: Vec<usize> = (0..103).collect();
        let serial: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1usize, 2, 3, 4, 7] {
            for chunk in [1usize, 2, 5, 16, 103, 1000] {
                let out = map_chunked(&items, workers, chunk, |i, &x| {
                    assert_eq!(i, x);
                    x * 3 + 1
                });
                assert_eq!(out, serial, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunked_map_visits_every_item_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..64).collect();
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = map_chunked(&items, 4, 3, |i, _| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn default_chunk_is_positive_and_balances() {
        assert_eq!(default_chunk(0, 4), 1);
        assert_eq!(default_chunk(3, 4), 1);
        assert_eq!(default_chunk(160, 4), 10);
        assert_eq!(default_chunk(160, 0), 40);
        // Each worker gets roughly four claims.
        let n = 1000;
        let workers = 8;
        let chunk = default_chunk(n, workers);
        let claims = n.div_ceil(chunk);
        assert!((claims / workers) >= 3, "claims = {claims}");
    }

    #[test]
    fn chunked_map_empty_input_with_many_workers() {
        let empty: Vec<u32> = Vec::new();
        // workers.min(0) == 0 must fall through to the serial path, not
        // spawn anything or index past the end.
        assert!(map_chunked(&empty, 8, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn chunked_map_chunk_larger_than_len() {
        // One claim grabs everything; the other workers find the counter
        // exhausted and exit without work.
        let items = [10u32, 20, 30, 40, 50];
        let out = map_chunked(&items, 3, 100, |i, &x| (i, x));
        assert_eq!(out, vec![(0, 10), (1, 20), (2, 30), (3, 40), (4, 50)]);
    }

    #[test]
    fn chunked_map_non_divisible_final_chunk_is_short() {
        // 10 items in chunks of 3: claims are [0..3), [3..6), [6..9), [9..10).
        // Every index must appear exactly once despite the short tail.
        let items: Vec<usize> = (0..10).collect();
        let counts: Vec<AtomicUsize> = (0..10).map(|_| AtomicUsize::new(0)).collect();
        let out = map_chunked(&items, 2, 3, |i, &x| {
            counts[i].fetch_add(1, Ordering::Relaxed);
            x + 1
        });
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_override_reaches_map() {
        // A chunk override of 1 forces one claim per item through the
        // public `map` entry point. Outputs are chunk-invariant by
        // contract, so even if another test observes the override
        // mid-flight nothing changes.
        set_chunk_override(Some(1));
        let items: Vec<usize> = (0..37).collect();
        let out = map(&items, |_, &x| x * 2);
        set_chunk_override(None);
        assert_eq!(out, (0..37).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_override_reaches_map() {
        set_thread_override(Some(3));
        assert_eq!(max_threads(), 3);
        let items: Vec<usize> = (0..37).collect();
        let out = map(&items, |_, &x| x + 7);
        set_thread_override(None);
        assert_eq!(out, (7..44).collect::<Vec<_>>());
    }

    #[test]
    fn override_zero_clamps_to_one() {
        set_thread_override(Some(0));
        assert_eq!(max_threads(), 1);
        set_thread_override(None);
    }

    #[test]
    fn invalid_fanout_env_falls_through_to_default() {
        // Regression: unparseable values used to collapse to 1 via
        // `unwrap_or(1)`, silently serialising the pipeline. They must
        // fall through to the documented default instead.
        assert_eq!(parse_fanout_env(Some("abc")), None);
        assert_eq!(parse_fanout_env(Some("")), None);
        assert_eq!(parse_fanout_env(Some("   ")), None);
        assert_eq!(parse_fanout_env(Some("4x")), None);
        assert_eq!(parse_fanout_env(Some("-2")), None);
        assert_eq!(parse_fanout_env(None), None);
    }

    #[test]
    fn valid_fanout_env_parses_and_zero_clamps() {
        assert_eq!(parse_fanout_env(Some("4")), Some(4));
        assert_eq!(parse_fanout_env(Some(" 8 ")), Some(8));
        assert_eq!(parse_fanout_env(Some("\t2\n")), Some(2));
        // `0` still clamps to 1 rather than disabling the pool.
        assert_eq!(parse_fanout_env(Some("0")), Some(1));
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let items: Vec<usize> = (0..64).collect();
            map(&items, |_, &x| {
                if x == 13 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn max_threads_is_at_least_one() {
        assert!(max_threads() >= 1);
    }
}
