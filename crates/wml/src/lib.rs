//! # wimi-ml
//!
//! Machine-learning substrate for the WiMi reproduction: a from-scratch
//! SMO-trained SVM (linear/RBF/polynomial kernels, one-vs-one multiclass),
//! a k-NN baseline, feature standardisation, stratified splits/folds, and
//! confusion-matrix metrics.
//!
//! # Example: train and evaluate a multiclass SVM
//!
//! ```
//! use rand::SeedableRng;
//! use wimi_ml::dataset::Dataset;
//! use wimi_ml::multiclass::MulticlassSvm;
//! use wimi_ml::svm::SvmParams;
//!
//! let mut ds = Dataset::new(vec!["water".into(), "oil".into()]);
//! for i in 0..10 {
//!     ds.push(vec![0.13 + i as f64 * 1e-3], 0);
//!     ds.push(vec![0.04 + i as f64 * 1e-3], 1);
//! }
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
//! assert_eq!(model.predict(&[0.135]), 0);
//! ```

pub mod cv;
pub mod dataset;
pub mod knn;
pub mod metrics;
pub mod multiclass;
pub mod par;
pub mod scale;
pub mod svm;

pub use cv::{cross_validate_svm, CvResult};
pub use dataset::Dataset;
pub use knn::KnnClassifier;
pub use metrics::{accuracy, ConfusionMatrix};
pub use multiclass::MulticlassSvm;
pub use scale::StandardScaler;
pub use svm::{BinarySvm, Kernel, SvmParams};
