//! Support vector machine trained with the SMO algorithm.
//!
//! WiMi feeds its material features to an SVM classifier (paper §III-E).
//! This module implements a binary soft-margin SVM trained with a
//! simplified Sequential Minimal Optimization solver, plus one-vs-one
//! multiclass voting in [`crate::multiclass`].

use rand::Rng;

/// Kernel functions for the SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Linear kernel `⟨x, y⟩`.
    Linear,
    /// Gaussian RBF `exp(−γ‖x−y‖²)`.
    Rbf {
        /// Width parameter γ.
        gamma: f64,
    },
    /// Polynomial `(⟨x, y⟩ + c)^d`.
    Polynomial {
        /// Degree `d`.
        degree: u32,
        /// Offset `c`.
        coef0: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths differ.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "kernel operands must share dimension");
        match *self {
            Kernel::Linear => dot(x, y),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Polynomial { degree, coef0 } => (dot(x, y) + coef0).powi(degree as i32),
        }
    }
}

fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// SVM training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmParams {
    /// Soft-margin penalty C.
    pub c: f64,
    /// KKT violation tolerance.
    pub tolerance: f64,
    /// Passes over the data without any α update before stopping.
    pub max_passes: usize,
    /// Hard cap on optimisation sweeps.
    pub max_iterations: usize,
    /// Kernel.
    pub kernel: Kernel,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 10.0,
            tolerance: 1e-3,
            max_passes: 5,
            max_iterations: 300,
            kernel: Kernel::Rbf { gamma: 0.5 },
        }
    }
}

/// A trained binary SVM (labels −1/+1).
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySvm {
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>, // αᵢ·yᵢ for each support vector
    bias: f64,
    kernel: Kernel,
    iterations: usize,
}

impl BinarySvm {
    /// Trains on `xs` with ±1 labels `ys` using simplified SMO.
    ///
    /// Accepts any slice of feature rows (`Vec<f64>`, `&[f64]`, …) so
    /// callers can pass borrowed views instead of cloning each sample.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or mismatched, labels are not ±1, or
    /// only one class is present.
    pub fn train<X: AsRef<[f64]>, R: Rng + ?Sized>(
        xs: &[X],
        ys: &[f64],
        params: &SvmParams,
        rng: &mut R,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot train on an empty set");
        assert_eq!(xs.len(), ys.len(), "features/labels length mismatch");
        assert!(
            ys.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be exactly ±1"
        );
        assert!(
            ys.iter().any(|&y| y > 0.0) && ys.iter().any(|&y| y < 0.0),
            "training set must contain both classes"
        );

        let n = xs.len();
        // Precompute the kernel matrix in one flat row-major allocation,
        // evaluating only the upper triangle and mirroring (the kernel is
        // symmetric). Training sets here are small: tens to a few hundred
        // samples.
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            let xi = xs[i].as_ref();
            k[i * n + i] = params.kernel.eval(xi, xi);
            for j in (i + 1)..n {
                let v = params.kernel.eval(xi, xs[j].as_ref());
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alpha: &[f64], b: f64, k: &[f64], i: usize| -> f64 {
            let mut s = b;
            let row = &k[i * n..(i + 1) * n];
            for j in 0..n {
                // Multipliers satisfy 0 ≤ α ≤ C; `> 0.0` is the sparsity
                // skip without a float equality.
                if alpha[j] > 0.0 {
                    s += alpha[j] * ys[j] * row[j];
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iter = 0usize;
        while passes < params.max_passes && iter < params.max_iterations {
            iter += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let e_i = f(&alpha, b, &k, i) - ys[i];
                let viol = (ys[i] * e_i < -params.tolerance && alpha[i] < params.c)
                    || (ys[i] * e_i > params.tolerance && alpha[i] > 0.0);
                if !viol {
                    continue;
                }
                // Pick j ≠ i at random (simplified SMO heuristic).
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alpha, b, &k, j) - ys[j];
                let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if ys[i] != ys[j] {
                    (
                        (alpha[j] - alpha[i]).max(0.0),
                        (params.c + alpha[j] - alpha[i]).min(params.c),
                    )
                } else {
                    (
                        (alpha[i] + alpha[j] - params.c).max(0.0),
                        (alpha[i] + alpha[j]).min(params.c),
                    )
                };
                if lo >= hi {
                    continue;
                }
                let (k_ii, k_ij, k_jj) = (k[i * n + i], k[i * n + j], k[j * n + j]);
                let eta = 2.0 * k_ij - k_ii - k_jj;
                if eta >= 0.0 {
                    continue;
                }
                let mut a_j = a_j_old - ys[j] * (e_i - e_j) / eta;
                a_j = a_j.clamp(lo, hi);
                if (a_j - a_j_old).abs() < 1e-6 {
                    continue;
                }
                let a_i = a_i_old + ys[i] * ys[j] * (a_j_old - a_j);
                alpha[i] = a_i;
                alpha[j] = a_j;

                let b1 = b - e_i - ys[i] * (a_i - a_i_old) * k_ii - ys[j] * (a_j - a_j_old) * k_ij;
                let b2 = b - e_j - ys[i] * (a_i - a_i_old) * k_ij - ys[j] * (a_j - a_j_old) * k_jj;
                b = if 0.0 < a_i && a_i < params.c {
                    b1
                } else if 0.0 < a_j && a_j < params.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_vectors.push(xs[i].as_ref().to_vec());
                coefficients.push(alpha[i] * ys[i]);
            }
        }
        BinarySvm {
            support_vectors,
            coefficients,
            bias: b,
            kernel: params.kernel,
            iterations: iter,
        }
    }

    /// Optimisation sweeps the SMO loop ran before converging (or hitting
    /// the iteration cap). Deterministic for a seeded RNG.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Signed decision value `Σ αᵢyᵢ·K(xᵢ, x) + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(&self.coefficients)
            .map(|(sv, c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label (−1 or +1).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors retained.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n: usize, sep: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Two deterministic blobs separated along x.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let t = i as f64 * 0.7;
            xs.push(vec![sep + 0.3 * t.sin(), 0.3 * t.cos()]);
            ys.push(1.0);
            xs.push(vec![-sep + 0.3 * (t + 1.0).sin(), 0.3 * (t + 2.0).cos()]);
            ys.push(-1.0);
        }
        (xs, ys)
    }

    #[test]
    fn separable_blobs_are_classified() {
        let (xs, ys) = blobs(20, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        let svm = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert_eq!(correct, xs.len());
    }

    #[test]
    fn linear_kernel_works_on_separable_data() {
        let (xs, ys) = blobs(20, 3.0);
        let params = SvmParams {
            kernel: Kernel::Linear,
            ..SvmParams::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let svm = BinarySvm::train(&xs, &ys, &params, &mut rng);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.95, "linear accuracy = {acc}");
    }

    #[test]
    fn rbf_solves_xor() {
        // XOR is not linearly separable; RBF must handle it.
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let ys = vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let params = SvmParams {
            kernel: Kernel::Rbf { gamma: 4.0 },
            c: 100.0,
            ..SvmParams::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let svm = BinarySvm::train(&xs, &ys, &params, &mut rng);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y, "misclassified {x:?}");
        }
    }

    #[test]
    fn decision_margin_grows_away_from_boundary() {
        let (xs, ys) = blobs(20, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        let svm = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
        let near = svm.decision(&[0.5, 0.0]);
        let far = svm.decision(&[3.0, 0.0]);
        assert!(
            far > near,
            "decision should grow with distance: {near} vs {far}"
        );
    }

    #[test]
    fn support_vectors_are_a_subset() {
        let (xs, ys) = blobs(30, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let svm = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
        assert!(svm.n_support_vectors() >= 2);
        assert!(svm.n_support_vectors() <= xs.len());
    }

    #[test]
    fn kernels_evaluate_correctly() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0];
        assert_eq!(Kernel::Linear.eval(&x, &y), 11.0);
        let rbf = Kernel::Rbf { gamma: 0.5 }.eval(&x, &y);
        assert!((rbf - (-0.5f64 * 8.0).exp()).abs() < 1e-12);
        let poly = Kernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        }
        .eval(&x, &y);
        assert_eq!(poly, 144.0);
        // Identity: K(x,x) for RBF is 1.
        assert!((Kernel::Rbf { gamma: 2.0 }.eval(&x, &x) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn train_rejects_single_class() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![1.0, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        let _ = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn train_rejects_bad_labels() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![0.0, 1.0];
        let mut rng = StdRng::seed_from_u64(6);
        let _ = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
    }

    #[test]
    fn overlapping_classes_still_train() {
        // Heavily overlapping blobs: training must terminate and do better
        // than chance on the training set.
        let (xs, ys) = blobs(40, 0.2);
        let mut rng = StdRng::seed_from_u64(7);
        let svm = BinarySvm::train(&xs, &ys, &SvmParams::default(), &mut rng);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count() as f64
            / xs.len() as f64;
        assert!(acc > 0.6, "overlap accuracy = {acc}");
    }
}
