//! Feature standardisation.

/// Per-dimension standardiser: `x' = (x − μ)/σ`, fitted on training data
/// and applied to both training and test sets so no test statistics leak.
///
/// # Examples
///
/// ```
/// use wimi_ml::scale::StandardScaler;
///
/// let train = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
/// let scaler = StandardScaler::fit(&train);
/// let z = scaler.transform_one(&[2.0, 20.0]);
/// assert!(z.iter().all(|v| v.abs() < 1e-12)); // the mean maps to 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations per dimension.
    ///
    /// Dimensions with zero variance get σ = 1 (pass-through after
    /// centring) so constant features do not produce NaNs.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on no data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|row| row.len() == dim),
            "rows must share dimensionality"
        );
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for row in data {
            for (m, x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        means.iter_mut().for_each(|m| *m /= n);
        let mut stds = vec![0.0; dim];
        for row in data {
            for (s, (x, m)) in stds.iter_mut().zip(row.iter().zip(&means)) {
                *s += (x - m) * (x - m);
            }
        }
        for s in stds.iter_mut() {
            *s = (*s / n).sqrt();
            // A standard deviation is non-negative; guard the degenerate
            // constant-feature case without a float equality.
            if *s <= 0.0 {
                *s = 1.0;
            }
        }
        StandardScaler { means, stds }
    }

    /// Standardises one vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimension differs from the fitted data.
    pub fn transform_one(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.means.len(), "dimension mismatch");
        x.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises a batch.
    pub fn transform(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|row| self.transform_one(row)).collect()
    }

    /// Fitted per-dimension means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Fitted per-dimension standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_var() {
        let data = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform(&data);
        for d in 0..2 {
            let col: Vec<f64> = z.iter().map(|row| row[d]).collect();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_does_not_nan() {
        let data = vec![vec![5.0, 1.0], vec![5.0, 2.0]];
        let scaler = StandardScaler::fit(&data);
        let z = scaler.transform_one(&[5.0, 1.5]);
        assert!(z.iter().all(|v| v.is_finite()));
        assert_eq!(z[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn transform_rejects_wrong_dim() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = scaler.transform_one(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_rejects_empty() {
        let _ = StandardScaler::fit(&[]);
    }

    #[test]
    fn accessors() {
        let scaler = StandardScaler::fit(&[vec![0.0], vec![2.0]]);
        assert_eq!(scaler.means(), &[1.0]);
        assert_eq!(scaler.stds(), &[1.0]);
    }
}
