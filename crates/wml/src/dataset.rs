//! Labelled datasets and splitting utilities.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset: feature vectors with class labels.
///
/// # Examples
///
/// ```
/// use wimi_ml::dataset::Dataset;
///
/// let mut ds = Dataset::new(vec!["cat".into(), "dog".into()]);
/// ds.push(vec![0.0, 1.0], 0);
/// ds.push(vec![1.0, 0.0], 1);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.n_classes(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    class_names: Vec<String>,
}

impl Dataset {
    /// Creates an empty dataset with the given class names.
    ///
    /// # Panics
    ///
    /// Panics if no classes are given.
    pub fn new(class_names: Vec<String>) -> Self {
        assert!(!class_names.is_empty(), "dataset needs at least one class");
        Dataset {
            features: Vec::new(),
            labels: Vec::new(),
            class_names,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the label is out of range, the feature vector is empty,
    /// contains non-finite values, or its dimension differs from earlier
    /// samples.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert!(label < self.class_names.len(), "label out of range");
        assert!(!features.is_empty(), "feature vector must be non-empty");
        assert!(
            features.iter().all(|x| x.is_finite()),
            "features must be finite"
        );
        if let Some(first) = self.features.first() {
            assert_eq!(
                first.len(),
                features.len(),
                "feature dimension must be consistent"
            );
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Returns `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Class display names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One sample.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn sample(&self, i: usize) -> (&[f64], usize) {
        (&self.features[i], self.labels[i])
    }

    /// Count of samples per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Stratified train/test split: each class contributes `train_frac` of
    /// its samples to the training set (rounded down, at least one per
    /// class if the class has ≥ 2 samples).
    ///
    /// # Panics
    ///
    /// Panics if `train_frac` is not in `(0, 1)`.
    pub fn stratified_split<R: Rng + ?Sized>(
        &self,
        train_frac: f64,
        rng: &mut R,
    ) -> (Dataset, Dataset) {
        assert!(
            train_frac > 0.0 && train_frac < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut train = Dataset::new(self.class_names.clone());
        let mut test = Dataset::new(self.class_names.clone());
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            idx.shuffle(rng);
            let n_train = if idx.len() >= 2 {
                ((idx.len() as f64 * train_frac) as usize).clamp(1, idx.len() - 1)
            } else {
                idx.len()
            };
            for (j, &i) in idx.iter().enumerate() {
                let target = if j < n_train { &mut train } else { &mut test };
                target.push(self.features[i].clone(), class);
            }
        }
        (train, test)
    }

    /// Stratified k-fold indices: returns `k` disjoint test-index sets
    /// covering all samples, with class proportions preserved.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds the smallest class count.
    pub fn stratified_folds<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        let min_class = self
            .class_counts()
            .into_iter()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(0);
        assert!(
            k <= min_class,
            "k ({k}) exceeds the smallest class count ({min_class})"
        );
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class in 0..self.n_classes() {
            let mut idx: Vec<usize> = (0..self.len())
                .filter(|&i| self.labels[i] == class)
                .collect();
            idx.shuffle(rng);
            for (j, i) in idx.into_iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        folds
    }

    /// Builds the complement dataset pair for one fold: (train, test).
    pub fn fold_split(&self, test_indices: &[usize]) -> (Dataset, Dataset) {
        // A sorted Vec keeps membership checks O(log n) without the
        // unspecified iteration order of a hashed set.
        let mut test_set: Vec<usize> = test_indices.to_vec();
        test_set.sort_unstable();
        let mut train = Dataset::new(self.class_names.clone());
        let mut test = Dataset::new(self.class_names.clone());
        for i in 0..self.len() {
            let target = if test_set.binary_search(&i).is_ok() {
                &mut test
            } else {
                &mut train
            };
            target.push(self.features[i].clone(), self.labels[i]);
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n_per_class: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        for class in 0..3 {
            for i in 0..n_per_class {
                ds.push(vec![class as f64, i as f64], class);
            }
        }
        ds
    }

    #[test]
    fn push_and_introspect() {
        let ds = toy(4);
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.class_counts(), vec![4, 4, 4]);
        let (x, y) = ds.sample(5);
        assert_eq!(y, 1);
        assert_eq!(x.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn push_rejects_bad_label() {
        let mut ds = toy(1);
        ds.push(vec![0.0, 0.0], 7);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn push_rejects_nan() {
        let mut ds = toy(1);
        ds.push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn push_rejects_dim_mismatch() {
        let mut ds = toy(1);
        ds.push(vec![1.0], 0);
    }

    #[test]
    fn stratified_split_preserves_classes() {
        let ds = toy(10);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ds.stratified_split(0.7, &mut rng);
        assert_eq!(train.class_counts(), vec![7, 7, 7]);
        assert_eq!(test.class_counts(), vec![3, 3, 3]);
        assert_eq!(train.len() + test.len(), ds.len());
    }

    #[test]
    fn split_keeps_at_least_one_test_sample() {
        let ds = toy(2);
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = ds.stratified_split(0.99, &mut rng);
        assert_eq!(train.class_counts(), vec![1, 1, 1]);
        assert_eq!(test.class_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn folds_are_disjoint_and_cover() {
        let ds = toy(10);
        let mut rng = StdRng::seed_from_u64(3);
        let folds = ds.stratified_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn fold_split_partitions() {
        let ds = toy(5);
        let mut rng = StdRng::seed_from_u64(4);
        let folds = ds.stratified_folds(5, &mut rng);
        let (train, test) = ds.fold_split(&folds[0]);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), folds[0].len());
    }

    #[test]
    #[should_panic(expected = "exceeds the smallest class")]
    fn folds_reject_small_classes() {
        let ds = toy(3);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ds.stratified_folds(4, &mut rng);
    }
}
