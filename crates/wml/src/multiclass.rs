//! One-vs-one multiclass SVM.

use crate::dataset::Dataset;
use crate::svm::{BinarySvm, SvmParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multiclass SVM built from `k(k−1)/2` one-vs-one binary machines with
/// majority voting (decision values break ties).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wimi_ml::dataset::Dataset;
/// use wimi_ml::multiclass::MulticlassSvm;
/// use wimi_ml::svm::SvmParams;
///
/// let mut ds = Dataset::new(vec!["lo".into(), "hi".into()]);
/// for i in 0..10 {
///     ds.push(vec![i as f64 * 0.1], 0);
///     ds.push(vec![5.0 + i as f64 * 0.1], 1);
/// }
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
/// assert_eq!(model.predict(&[0.2]), 0);
/// assert_eq!(model.predict(&[5.3]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MulticlassSvm {
    machines: Vec<(usize, usize, BinarySvm)>,
    n_classes: usize,
}

impl MulticlassSvm {
    /// Trains one binary SVM per class pair. Pairs where either class has
    /// no samples are skipped.
    ///
    /// The `k(k−1)/2` machines are trained in parallel on scoped threads
    /// (worker count from `WIMI_THREADS`, see [`crate::par`]). One seed
    /// per machine is drawn from `rng` *serially in ascending pair order*
    /// before the fan-out, and each machine runs SMO with its own
    /// [`StdRng`] derived from that seed — so the trained model is
    /// bitwise identical no matter how many threads run or how they are
    /// scheduled. (This derivation replaced training every machine from
    /// the caller's single sequential stream; models trained by older
    /// revisions differ numerically but not statistically.)
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than two populated classes.
    pub fn train<R: Rng + ?Sized>(ds: &Dataset, params: &SvmParams, rng: &mut R) -> Self {
        Self::train_recorded(ds, params, rng, None)
    }

    /// Like [`MulticlassSvm::train`], but reports a
    /// [`wimi_obs::StageId::Classification`] span and the number of binary
    /// machines trained to `recorder`. Training output is bit-identical
    /// with or without a recorder.
    ///
    /// # Panics
    ///
    /// Same contract as [`MulticlassSvm::train`].
    pub fn train_recorded<R: Rng + ?Sized>(
        ds: &Dataset,
        params: &SvmParams,
        rng: &mut R,
        recorder: Option<&wimi_obs::Recorder>,
    ) -> Self {
        Self::train_observed(ds, params, rng, recorder, None)
    }

    /// Like [`MulticlassSvm::train_recorded`], but additionally emits one
    /// ordered [`wimi_trace::TraceEvent::SvmMachine`] per one-vs-one
    /// machine into `trace`. Each machine's events are scoped to its own
    /// [`wimi_trace::TaskKey`] (keyed by the class pair), so the rendered
    /// trace is byte-identical under any `WIMI_THREADS` setting. Training
    /// output is bit-identical with or without observers.
    ///
    /// # Panics
    ///
    /// Same contract as [`MulticlassSvm::train`].
    pub fn train_observed<R: Rng + ?Sized>(
        ds: &Dataset,
        params: &SvmParams,
        rng: &mut R,
        recorder: Option<&wimi_obs::Recorder>,
        trace: Option<&wimi_trace::TraceSink>,
    ) -> Self {
        let _span = recorder.map(|r| r.span(wimi_obs::StageId::Classification));
        let counts = ds.class_counts();
        let populated = counts.iter().filter(|&&c| c > 0).count();
        assert!(
            populated >= 2,
            "multiclass training needs at least two populated classes"
        );
        let k = ds.n_classes();
        let mut jobs: Vec<(usize, usize, u64)> = Vec::with_capacity(k * (k - 1) / 2);
        for a in 0..k {
            for b in (a + 1)..k {
                if counts[a] == 0 || counts[b] == 0 {
                    continue;
                }
                jobs.push((a, b, rng.gen::<u64>()));
            }
        }
        let machines = crate::par::map(&jobs, |_, &(a, b, seed)| {
            // Each machine is one deterministic trace task: scoping by
            // the class pair (not the worker thread) keeps the rendered
            // trace identical under any WIMI_THREADS setting.
            let _task =
                trace.map(|_| wimi_trace::task_scope(wimi_trace::TaskKey::svm_machine(a, b)));
            // Borrowed feature views: the one-vs-one subset is gathered
            // without cloning any sample.
            let mut xs: Vec<&[f64]> = Vec::with_capacity(counts[a] + counts[b]);
            let mut ys: Vec<f64> = Vec::with_capacity(counts[a] + counts[b]);
            for i in 0..ds.len() {
                let (x, y) = ds.sample(i);
                if y == a {
                    xs.push(x);
                    ys.push(1.0);
                } else if y == b {
                    xs.push(x);
                    ys.push(-1.0);
                }
            }
            let mut machine_rng = StdRng::seed_from_u64(seed);
            let machine = BinarySvm::train(&xs, &ys, params, &mut machine_rng);
            if let Some(t) = trace {
                t.emit(wimi_trace::TraceEvent::SvmMachine {
                    class_a: a as u32,
                    class_b: b as u32,
                    rounds: machine.iterations() as u64,
                });
            }
            (a, b, machine)
        });
        if let Some(rec) = recorder {
            rec.add(
                wimi_obs::CounterId::SvmMachinesTrained,
                machines.len() as u64,
            );
        }
        if let Some(t) = trace {
            t.emit(wimi_trace::TraceEvent::Count {
                counter: wimi_obs::CounterId::SvmMachinesTrained,
                delta: machines.len() as u64,
            });
        }
        MulticlassSvm {
            machines,
            n_classes: k,
        }
    }

    /// Predicts the class of `x` by one-vs-one voting.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        let mut margins = vec![0.0f64; self.n_classes];
        for (a, b, svm) in &self.machines {
            let d = svm.decision(x);
            if d >= 0.0 {
                votes[*a] += 1;
                margins[*a] += d;
            } else {
                votes[*b] += 1;
                margins[*b] -= d;
            }
        }
        // Majority vote; summed margins break ties.
        (0..self.n_classes)
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(margins[i].total_cmp(&margins[j]))
            })
            .unwrap_or(0)
    }

    /// Predicts a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of underlying binary machines.
    pub fn n_machines(&self) -> usize {
        self.machines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_blobs(n: usize) -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "c".into()]);
        let centers = [(0.0, 0.0), (4.0, 0.0), (2.0, 4.0)];
        for (class, (cx, cy)) in centers.iter().enumerate() {
            for i in 0..n {
                let t = i as f64 * 0.9;
                ds.push(vec![cx + 0.4 * t.sin(), cy + 0.4 * t.cos()], class);
            }
        }
        ds
    }

    #[test]
    fn three_class_blobs_classify_perfectly() {
        let ds = three_blobs(15);
        let mut rng = StdRng::seed_from_u64(0);
        let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
        assert_eq!(model.n_machines(), 3);
        for i in 0..ds.len() {
            let (x, y) = ds.sample(i);
            assert_eq!(model.predict(x), y);
        }
    }

    #[test]
    fn batch_prediction_matches_single() {
        let ds = three_blobs(10);
        let mut rng = StdRng::seed_from_u64(1);
        let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
        let xs: Vec<Vec<f64>> = ds.features().to_vec();
        let batch = model.predict_batch(&xs);
        for (i, &pred) in batch.iter().enumerate() {
            assert_eq!(pred, model.predict(&xs[i]));
        }
    }

    #[test]
    fn empty_classes_are_skipped() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into(), "ghost".into()]);
        for i in 0..10 {
            ds.push(vec![i as f64 * 0.1], 0);
            ds.push(vec![3.0 + i as f64 * 0.1], 1);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
        assert_eq!(model.n_machines(), 1);
        assert_eq!(model.predict(&[0.0]), 0);
        assert_eq!(model.predict(&[3.5]), 1);
    }

    #[test]
    fn training_is_thread_count_invariant() {
        // Per-machine RNG streams are derived from seeds drawn before the
        // fan-out, so 1 worker and 4 workers must produce bitwise
        // identical machines (support vectors, coefficients, biases).
        let ds = three_blobs(12);
        let train = || {
            let mut rng = StdRng::seed_from_u64(9);
            MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng)
        };
        crate::par::set_thread_override(Some(1));
        let serial = train();
        crate::par::set_thread_override(Some(4));
        let parallel = train();
        crate::par::set_thread_override(None);
        assert_eq!(serial.n_classes, parallel.n_classes);
        assert_eq!(serial.machines, parallel.machines);
        assert!(serial
            .machines
            .iter()
            .all(|(_, _, m)| m.n_support_vectors() >= 2));
    }

    #[test]
    #[should_panic(expected = "two populated classes")]
    fn rejects_single_class_data() {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        ds.push(vec![1.0], 0);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
    }
}
