//! Classification metrics: accuracy and confusion matrices.

use std::fmt;

/// A confusion matrix: `counts[true][predicted]`.
///
/// Displays in the row-normalised style of the paper's Fig. 15/16.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
    class_names: Vec<String>,
}

impl ConfusionMatrix {
    /// Builds from true/predicted label pairs.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, class list is empty, or any label is
    /// out of range.
    pub fn from_predictions(truth: &[usize], predicted: &[usize], class_names: &[String]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "label vectors must align");
        assert!(!class_names.is_empty(), "need at least one class");
        let k = class_names.len();
        let mut counts = vec![vec![0usize; k]; k];
        for (&t, &p) in truth.iter().zip(predicted) {
            assert!(t < k && p < k, "label out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix {
            counts,
            class_names: class_names.to_vec(),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Raw count for (true, predicted).
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn count(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Row-normalised rate for (true, predicted): the fraction of class
    /// `truth` samples predicted as `predicted`. Returns 0 for empty rows.
    pub fn rate(&self, truth: usize, predicted: usize) -> f64 {
        let row: usize = self.counts[truth].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[truth][predicted] as f64 / row as f64
        }
    }

    /// Overall accuracy: trace / total. Returns `NaN` when empty.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return f64::NAN;
        }
        let correct: usize = (0..self.n_classes()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Per-class recall (diagonal rates).
    pub fn per_class_accuracy(&self) -> Vec<f64> {
        (0..self.n_classes()).map(|i| self.rate(i, i)).collect()
    }

    /// Average of per-class recalls over populated classes (the "average
    /// accuracy" the paper quotes).
    pub fn mean_per_class_accuracy(&self) -> f64 {
        let populated: Vec<f64> = (0..self.n_classes())
            .filter(|&i| self.counts[i].iter().sum::<usize>() > 0)
            .map(|i| self.rate(i, i))
            .collect();
        if populated.is_empty() {
            f64::NAN
        } else {
            populated.iter().sum::<f64>() / populated.len() as f64
        }
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = self.n_classes();
        let width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max(5);
        write!(f, "{:>width$} |", "")?;
        for name in &self.class_names {
            write!(f, " {name:>width$}")?;
        }
        writeln!(f)?;
        writeln!(f, "{}", "-".repeat((width + 2) * (k + 1)))?;
        for t in 0..k {
            write!(f, "{:>width$} |", self.class_names[t])?;
            for p in 0..k {
                let r = self.rate(t, p);
                // Rates are non-negative; non-positive cells print as dots.
                if r <= 0.0 {
                    write!(f, " {:>width$}", ".")?;
                } else {
                    write!(f, " {:>width$.2}", r)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Plain accuracy between two label vectors.
///
/// # Panics
///
/// Panics if lengths mismatch or are zero.
pub fn accuracy(truth: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "label vectors must align");
    assert!(!truth.is_empty(), "need at least one sample");
    truth.iter().zip(predicted).filter(|(t, p)| t == p).count() as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("c{i}")).collect()
    }

    #[test]
    fn perfect_predictions() {
        let t = vec![0, 1, 2, 0, 1, 2];
        let cm = ConfusionMatrix::from_predictions(&t, &t, &names(3));
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.per_class_accuracy(), vec![1.0, 1.0, 1.0]);
        assert_eq!(cm.mean_per_class_accuracy(), 1.0);
    }

    #[test]
    fn mixed_predictions() {
        let t = vec![0, 0, 0, 1, 1, 1];
        let p = vec![0, 0, 1, 1, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, &names(2));
        assert!((cm.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((cm.rate(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.rate(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.count(1, 0), 1);
    }

    #[test]
    fn empty_class_rows_are_zero() {
        let t = vec![0, 0];
        let p = vec![0, 0];
        let cm = ConfusionMatrix::from_predictions(&t, &p, &names(2));
        assert_eq!(cm.rate(1, 1), 0.0);
        // Mean per-class accuracy only counts populated classes.
        assert_eq!(cm.mean_per_class_accuracy(), 1.0);
    }

    #[test]
    fn display_renders_rates() {
        let t = vec![0, 1];
        let p = vec![0, 1];
        let cm = ConfusionMatrix::from_predictions(&t, &p, &names(2));
        let s = cm.to_string();
        assert!(s.contains("c0"));
        assert!(s.contains("1.00"));
    }

    #[test]
    fn plain_accuracy() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn accuracy_rejects_mismatch() {
        let _ = accuracy(&[0], &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn confusion_rejects_bad_labels() {
        let _ = ConfusionMatrix::from_predictions(&[5], &[0], &names(2));
    }
}
