//! Cross-validation harness.

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::multiclass::MulticlassSvm;
use crate::scale::StandardScaler;
use crate::svm::SvmParams;
use rand::Rng;

/// Result of a cross-validated evaluation.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
    /// Pooled confusion matrix over all folds.
    pub confusion: ConfusionMatrix,
}

impl CvResult {
    /// Mean fold accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// Runs stratified k-fold cross-validation with a standardising SVM
/// pipeline (scaler fitted per fold on the training split only).
///
/// # Panics
///
/// Panics under the same conditions as
/// [`Dataset::stratified_folds`](crate::dataset::Dataset::stratified_folds).
pub fn cross_validate_svm<R: Rng + ?Sized>(
    ds: &Dataset,
    params: &SvmParams,
    k: usize,
    rng: &mut R,
) -> CvResult {
    let folds = ds.stratified_folds(k, rng);
    let mut fold_accuracies = Vec::with_capacity(k);
    let mut truth_all = Vec::new();
    let mut pred_all = Vec::new();

    for fold in &folds {
        let (train, test) = ds.fold_split(fold);
        let scaler = StandardScaler::fit(train.features());
        let mut scaled_train = Dataset::new(train.class_names().to_vec());
        for i in 0..train.len() {
            let (x, y) = train.sample(i);
            scaled_train.push(scaler.transform_one(x), y);
        }
        let model = MulticlassSvm::train(&scaled_train, params, rng);

        let mut correct = 0usize;
        for i in 0..test.len() {
            let (x, y) = test.sample(i);
            let pred = model.predict(&scaler.transform_one(x));
            truth_all.push(y);
            pred_all.push(pred);
            if pred == y {
                correct += 1;
            }
        }
        fold_accuracies.push(correct as f64 / test.len() as f64);
    }

    CvResult {
        fold_accuracies,
        confusion: ConfusionMatrix::from_predictions(&truth_all, &pred_all, ds.class_names()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs() -> Dataset {
        let mut ds = Dataset::new(vec!["a".into(), "b".into()]);
        for i in 0..20 {
            let t = i as f64 * 0.31;
            ds.push(vec![t.sin() * 0.3, t.cos() * 0.3], 0);
            ds.push(vec![3.0 + t.sin() * 0.3, 3.0 + t.cos() * 0.3], 1);
        }
        ds
    }

    #[test]
    fn cv_on_separable_data_is_accurate() {
        let ds = blobs();
        let mut rng = StdRng::seed_from_u64(0);
        let result = cross_validate_svm(&ds, &SvmParams::default(), 4, &mut rng);
        assert_eq!(result.fold_accuracies.len(), 4);
        assert!(
            result.mean_accuracy() > 0.95,
            "acc = {}",
            result.mean_accuracy()
        );
        assert!(result.confusion.accuracy() > 0.95);
    }

    #[test]
    fn confusion_covers_all_samples() {
        let ds = blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let result = cross_validate_svm(&ds, &SvmParams::default(), 4, &mut rng);
        let total: usize = (0..2)
            .flat_map(|t| (0..2).map(move |p| (t, p)))
            .map(|(t, p)| result.confusion.count(t, p))
            .sum();
        assert_eq!(total, ds.len());
    }
}
