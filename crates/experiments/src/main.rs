//! CLI entry point: `cargo run -p wimi-experiments --release -- all`.

use wimi_experiments::{obs, run_named, Effort, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: wimi-experiments [--quick] [--obs-json PATH] [--obs-wall] \
         all | environments | <name>...\n       \
         wimi-experiments obs-validate PATH"
    );
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let obs_wall = args.iter().any(|a| a == "--obs-wall");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };

    // `--obs-json` consumes a value; everything else non-flag is a name.
    let mut obs_json: Option<String> = None;
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--obs-json" {
            match it.next() {
                Some(p) => obs_json = Some(p.clone()),
                None => usage(),
            }
        } else if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }

    if names.is_empty() || names == ["help"] {
        usage();
    }

    // Validation subcommand: no experiments run, just the schema check.
    if names[0] == "obs-validate" {
        match names.get(1) {
            Some(path) => obs::obs_validate(path),
            None => usage(),
        }
        return;
    }

    let started = std::time::Instant::now();
    if names == ["all"] {
        for name in ALL_EXPERIMENTS {
            assert!(run_named(name, effort), "unknown experiment {name}");
        }
        assert!(run_named("environments", effort));
    } else {
        for name in &names {
            // The obs report takes CLI-only options (JSON export path,
            // wall-clock timings) that `run_named` cannot carry.
            if *name == "obs-report" {
                obs::obs_report(effort, obs_json.as_deref(), obs_wall);
                continue;
            }
            if !run_named(name, effort) {
                eprintln!("unknown experiment: {name}");
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
                std::process::exit(2);
            }
        }
    }
    eprintln!("\ncompleted in {:.1}s", started.elapsed().as_secs_f64());
}
