//! CLI entry point: `cargo run -p wimi-experiments --release -- all`.

use wimi_experiments::{campaign, fleet, metrics, obs, run_named, trace, Effort, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: wimi-experiments [--quick] [--obs-json PATH] [--obs-wall] [--trace-out PATH] \
         all | environments | <name>...\n       \
         wimi-experiments obs-validate PATH\n       \
         wimi-experiments trace-diff A B\n       \
         wimi-experiments campaign-run PATH [--campaign-out DIR] [--cell N] [--check BENCH]\n       \
         wimi-experiments campaign-diff DIR_A DIR_B\n       \
         wimi-experiments campaign-validate PATH\n       \
         wimi-experiments fleet [--sessions N] [--measurements M] [--campaign PATH] \
[--fleet-out PATH] [--metrics-out PATH] [--slo POLICY] [--check BENCH]\n       \
         wimi-experiments metrics-validate PATH\n       \
         wimi-experiments metrics-diff A B\n       \
         wimi-experiments fleet-report SUMMARY [--metrics TIMELINE]"
    );
    eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
    std::process::exit(2);
}

/// Splits `args` into value-flag assignments and positional names. The
/// obs and trace layers share this one surface: every `--flag PATH` pair
/// listed in `value_flags` is consumed uniformly.
fn parse_args<'a>(
    args: &'a [String],
    value_flags: &[&str],
) -> (Vec<(&'a str, &'a str)>, Vec<&'a str>) {
    let mut values = Vec::new();
    let mut names = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if value_flags.contains(&a.as_str()) {
            match it.next() {
                Some(v) => values.push((a.as_str(), v.as_str())),
                None => usage(),
            }
        } else if !a.starts_with("--") {
            names.push(a.as_str());
        }
    }
    (values, names)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let obs_wall = args.iter().any(|a| a == "--obs-wall");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };

    let (values, names) = parse_args(
        &args,
        &[
            "--obs-json",
            "--trace-out",
            "--campaign-out",
            "--cell",
            "--check",
            "--sessions",
            "--measurements",
            "--campaign",
            "--fleet-out",
            "--metrics-out",
            "--slo",
            "--metrics",
        ],
    );
    let flag = |name: &str| values.iter().find(|(f, _)| *f == name).map(|&(_, v)| v);
    let obs_json = flag("--obs-json");
    let trace_out = flag("--trace-out");

    if names.is_empty() || names == ["help"] {
        usage();
    }

    // Validation/diff subcommands: no experiments run.
    if names[0] == "obs-validate" {
        match names.get(1) {
            Some(path) => obs::obs_validate(path),
            None => usage(),
        }
        return;
    }
    if names[0] == "trace-diff" {
        match (names.get(1), names.get(2)) {
            (Some(a), Some(b)) => trace::trace_diff(a, b),
            _ => usage(),
        }
        return;
    }
    if names[0] == "campaign-validate" {
        match names.get(1) {
            Some(path) => campaign::campaign_validate(path),
            None => usage(),
        }
        return;
    }
    if names[0] == "campaign-diff" {
        match (names.get(1), names.get(2)) {
            (Some(a), Some(b)) => campaign::campaign_diff(a, b),
            _ => usage(),
        }
        return;
    }
    if names[0] == "campaign-run" {
        let Some(path) = names.get(1) else { usage() };
        let cell = flag("--cell").map(|v| match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => usage(),
        });
        campaign::campaign_run(path, flag("--campaign-out"), cell, flag("--check"));
        return;
    }
    if names[0] == "metrics-validate" {
        match names.get(1) {
            Some(path) => metrics::metrics_validate(path),
            None => usage(),
        }
        return;
    }
    if names[0] == "metrics-diff" {
        match (names.get(1), names.get(2)) {
            (Some(a), Some(b)) => metrics::metrics_diff(a, b),
            _ => usage(),
        }
        return;
    }
    if names[0] == "fleet-report" {
        match names.get(1) {
            Some(path) => metrics::fleet_report(path, flag("--metrics")),
            None => usage(),
        }
        return;
    }
    if names[0] == "fleet" {
        let sessions = flag("--sessions").map(|v| match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => usage(),
        });
        let measurements = flag("--measurements").map(|v| match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => usage(),
        });
        fleet::fleet_run(
            sessions,
            measurements,
            flag("--campaign"),
            flag("--fleet-out"),
            flag("--metrics-out"),
            flag("--slo"),
            flag("--check"),
        );
        return;
    }

    let started = std::time::Instant::now();
    if names == ["all"] {
        for name in ALL_EXPERIMENTS {
            assert!(run_named(name, effort), "unknown experiment {name}");
        }
        assert!(run_named("environments", effort));
    } else {
        for name in &names {
            // The obs and trace reports take CLI-only options (export
            // paths, wall-clock timings) that `run_named` cannot carry.
            if *name == "obs-report" {
                obs::obs_report(effort, obs_json, obs_wall);
                continue;
            }
            if *name == "trace-report" {
                trace::trace_report(effort, trace_out);
                continue;
            }
            if !run_named(name, effort) {
                eprintln!("unknown experiment: {name}");
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
                std::process::exit(2);
            }
        }
    }
    eprintln!("\ncompleted in {:.1}s", started.elapsed().as_secs_f64());
}
