//! CLI entry point: `cargo run -p wimi-experiments --release -- all`.

use wimi_experiments::{run_named, Effort, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick {
        Effort::quick()
    } else {
        Effort::full()
    };
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if names.is_empty() || names == ["help"] {
        eprintln!("usage: wimi-experiments [--quick] all | environments | <name>...");
        eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let started = std::time::Instant::now();
    if names == ["all"] {
        for name in ALL_EXPERIMENTS {
            assert!(run_named(name, effort), "unknown experiment {name}");
        }
        assert!(run_named("environments", effort));
    } else {
        for name in &names {
            if !run_named(name, effort) {
                eprintln!("unknown experiment: {name}");
                eprintln!("experiments: {}", ALL_EXPERIMENTS.join(", "));
                std::process::exit(2);
            }
        }
    }
    eprintln!("\ncompleted in {:.1}s", started.elapsed().as_secs_f64());
}
