//! Feature-space figures: the material feature Ω̄ and antenna-pair
//! selection evidence (paper Figs. 9, 10).

use crate::harness::{heading, measure, Material, RunOptions};
use wimi_core::amplitude::{AmplitudeConfig, AmplitudeRatioProfile};
use wimi_core::antenna::score_pairs;
use wimi_core::phase::PhaseDifferenceProfile;
use wimi_core::{WiMi, WiMiConfig};
use wimi_dsp::stats::{mean, std_dev};
use wimi_phy::material::Liquid;
use wimi_phy::scenario::LiquidSpec;

/// Fig. 9: Ω̄ clusters for five liquids.
pub fn fig9() {
    heading("Fig. 9", "material feature Ω̄ for five liquids (office)");
    let materials = [
        Material {
            name: "Saltwater".into(),
            spec: LiquidSpec::saltwater(wimi_phy::material::SaltwaterConcentration::new(2.7)),
        },
        Material::catalog(Liquid::Vinegar),
        Material::catalog(Liquid::Pepsi),
        Material::catalog(Liquid::Milk),
        Material::catalog(Liquid::PureWater),
    ];
    let opts = RunOptions::default();
    let extractor = WiMi::new(WiMiConfig::default());
    println!("material    : Ω̄ mean ± std over 15 measurements");
    let mut means = Vec::new();
    for (i, m) in materials.iter().enumerate() {
        let mut omegas = Vec::new();
        for trial in 0..15u64 {
            let (feat, _) = measure(&extractor, &m.spec, &opts, 90_000 + i as u64 * 97 + trial);
            if let Some(f) = feat {
                omegas.push(f.omega_mean());
            }
        }
        println!(
            "  {:<10}: {:.4} ± {:.4}  (n = {})",
            m.name,
            mean(&omegas),
            std_dev(&omegas),
            omegas.len()
        );
        means.push(mean(&omegas));
    }
    let mut sorted = means.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min_gap = sorted
        .windows(2)
        .map(|w| w[1] - w[0])
        .fold(f64::INFINITY, f64::min);
    println!(
        "paper shape: distinct per-material clusters → {}",
        if min_gap > 0.005 {
            "REPRODUCED"
        } else {
            "clusters overlap"
        }
    );
}

/// Fig. 10: phase-difference and amplitude-ratio variance per antenna pair.
pub fn fig10() {
    heading("Fig. 10", "variance per antenna combination");
    let (_, tar) = crate::harness::capture_pair(
        &Liquid::Milk.into(),
        wimi_phy::channel::Environment::Lab,
        200,
        10,
        1.0,
        &|_| {},
    );
    println!("pair : phase-diff variance : amplitude-ratio variance");
    for score in score_pairs(&tar, &AmplitudeConfig::default()) {
        println!(
            "  ({}, {}) : {:.5} rad²        : {:.5}",
            score.pair.0 + 1,
            score.pair.1 + 1,
            score.phase_variance,
            score.amplitude_variance
        );
    }
    // Verify the variances actually differ across pairs.
    let scores = score_pairs(&tar, &AmplitudeConfig::default());
    let phases: Vec<f64> = scores.iter().map(|s| s.phase_variance).collect();
    let distinct = phases.iter().cloned().fold(f64::MIN, f64::max)
        > 1.2 * phases.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "paper shape: combinations differ → {}",
        if distinct {
            "REPRODUCED"
        } else {
            "similar pairs"
        }
    );
}

/// Sanity report on the measured ΔΘ/ΔΨ of one pair (not a paper figure;
/// useful context for readers of the report).
pub fn feature_anatomy() {
    heading("Anatomy", "ΔΘ / ΔΨ / Ω̄ of one milk measurement");
    let (base, tar) = crate::harness::capture_pair(
        &Liquid::Milk.into(),
        wimi_phy::channel::Environment::Lab,
        20,
        42,
        1.0,
        &|_| {},
    );
    let pb = PhaseDifferenceProfile::compute(&base, 0, 1);
    let pt = PhaseDifferenceProfile::compute(&tar, 0, 1);
    let ab = AmplitudeRatioProfile::compute(&base, 0, 1, &AmplitudeConfig::default());
    let at = AmplitudeRatioProfile::compute(&tar, 0, 1, &AmplitudeConfig::default());
    let wimi = WiMi::new(WiMiConfig::default());
    match wimi.extract_feature(&base, &tar) {
        Ok(f) => {
            println!("selected subcarriers: {:?}", f.subcarriers);
            println!("gamma (phase wraps):  {}", f.gamma);
            println!(
                "Ω̄ per subcarrier:     {:?}",
                f.omega
                    .iter()
                    .map(|o| (o * 1e4).round() / 1e4)
                    .collect::<Vec<_>>()
            );
            println!("Ω̄ mean:               {:.4}", f.omega_mean());
            println!("dispersion:           {:.4}", f.dispersion);
        }
        Err(e) => println!("extraction failed: {e}"),
    }
    let k = 15;
    println!(
        "subcarrier {k}: phase diff base {:.3} → target {:.3} rad; ratio base {:.3} → target {:.3}",
        pb.mean[k], pt.mean[k], ab.mean[k], at.mean[k]
    );
}
