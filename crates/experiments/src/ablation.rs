//! Ablations beyond the paper: design-choice sweeps called out in
//! DESIGN.md §5.

use crate::accuracy::Effort;
use crate::harness::{heading, pct, run_identification, Material, RunOptions};
use wimi_core::subcarrier::SubcarrierSelection;
use wimi_core::WiMiConfig;
use wimi_dsp::wavelet::{CorrelationDenoiser, Wavelet};
use wimi_ml::dataset::Dataset;
use wimi_ml::knn::KnnClassifier;
use wimi_ml::scale::StandardScaler;
use wimi_ml::svm::{Kernel, SvmParams};
use wimi_phy::material::Liquid;

fn subset() -> Vec<Material> {
    [
        Liquid::PureWater,
        Liquid::Milk,
        Liquid::Honey,
        Liquid::Oil,
        Liquid::Soy,
    ]
    .iter()
    .copied()
    .map(Material::catalog)
    .collect()
}

/// Ablation 1: number of good subcarriers P.
pub fn ablation_subcarrier_count(effort: Effort) {
    heading("Ablation", "good-subcarrier count P");
    for p in [1usize, 2, 4, 6, 8] {
        let config = WiMiConfig {
            subcarriers: SubcarrierSelection::BestByVariance(p),
            ..WiMiConfig::default()
        };
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let acc = run_identification(&subset(), &opts).accuracy();
        println!("  P = {p}: accuracy {}", pct(acc));
    }
}

/// Ablation 2: wavelet family of the amplitude denoiser.
pub fn ablation_wavelet_family(effort: Effort) {
    heading("Ablation", "denoiser wavelet family");
    for wavelet in Wavelet::ALL {
        let mut config = WiMiConfig::default();
        config.amplitude.denoiser = CorrelationDenoiser::new(wavelet, 4);
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let acc = run_identification(&subset(), &opts).accuracy();
        println!("  {wavelet}: accuracy {}", pct(acc));
    }
}

/// Ablation 3: classifier — SVM kernels vs kNN.
pub fn ablation_classifier(effort: Effort) {
    heading("Ablation", "classifier choice (SVM kernels vs kNN)");
    // SVM variants.
    for (name, kernel) in [
        ("SVM rbf γ=0.5", Kernel::Rbf { gamma: 0.5 }),
        ("SVM rbf γ=2.0", Kernel::Rbf { gamma: 2.0 }),
        ("SVM linear", Kernel::Linear),
    ] {
        let config = WiMiConfig {
            svm: SvmParams {
                kernel,
                ..SvmParams::default()
            },
            ..WiMiConfig::default()
        };
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let acc = run_identification(&subset(), &opts).accuracy();
        println!("  {name:<14}: accuracy {}", pct(acc));
    }
    // kNN baseline on the same features.
    let materials = subset();
    let opts = RunOptions {
        n_train: effort.n_train,
        n_test: effort.n_test,
        ..RunOptions::default()
    };
    let extractor = wimi_core::WiMi::new(opts.config.clone());
    let class_names: Vec<String> = materials.iter().map(|m| m.name.clone()).collect();
    let mut train = Dataset::new(class_names.clone());
    for trial in 0..opts.n_train {
        for (label, m) in materials.iter().enumerate() {
            let seed = opts.seed + 1_000 + trial as u64 * 131 + label as u64;
            if let (Some(f), _) = crate::harness::measure(&extractor, &m.spec, &opts, seed) {
                train.push(f.as_vector(), label);
            }
        }
    }
    let scaler = StandardScaler::fit(train.features());
    let mut scaled = Dataset::new(class_names);
    for i in 0..train.len() {
        let (x, y) = train.sample(i);
        scaled.push(scaler.transform_one(x), y);
    }
    let knn = KnnClassifier::fit(scaled, 5);
    let mut correct = 0usize;
    let mut total = 0usize;
    for trial in 0..opts.n_test {
        for (label, m) in materials.iter().enumerate() {
            let seed = opts.seed + 900_000 + trial as u64 * 137 + label as u64;
            if let (Some(f), _) = crate::harness::measure(&extractor, &m.spec, &opts, seed) {
                total += 1;
                if knn.predict(&scaler.transform_one(&f.as_vector())) == label {
                    correct += 1;
                }
            }
        }
    }
    println!(
        "  kNN (k = 5)   : accuracy {}",
        pct(correct as f64 / total.max(1) as f64)
    );
}

/// Robustness: flowing liquid (paper §VI limitation) — the pipeline should
/// mostly refuse rather than misclassify.
pub fn robustness_flowing_liquid() {
    heading("Robustness", "flowing liquid (paper §VI limitation)");
    let extractor = wimi_core::WiMi::new(WiMiConfig::default());
    for flow in [0.0, 0.4, 0.8] {
        let opts = RunOptions {
            retry: crate::harness::RetryPolicy::attempts(1),
            modify: Box::new(move |b| {
                b.flow_noise(flow);
            }),
            ..RunOptions::default()
        };
        let mut refused = 0usize;
        let total = 12usize;
        for trial in 0..total as u64 {
            let (feat, _) =
                crate::harness::measure(&extractor, &Liquid::Milk.into(), &opts, 50_000 + trial);
            if feat.is_none() {
                refused += 1;
            }
        }
        println!("  flow level {flow:.1}: {refused}/{total} measurements refused");
    }
}

/// The shipped environments campaign file (one cell per deployment
/// environment), embedded so the experiment runs from any directory.
pub const ENVIRONMENTS_CAMPAIGN: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../campaigns/environments.campaign"
));

/// Ten-liquid run in all three environments (paper's headline claim:
/// ≥95% in all three). Since PR 7 the grid is declared in
/// `campaigns/environments.campaign` and executed by the campaign
/// runner — the report prints one row per campaign cell.
pub fn environments(effort: Effort) {
    heading("Environments", "ten liquids in hall / lab / library");
    let mut c =
        wimi_campaign::parse(ENVIRONMENTS_CAMPAIGN).expect("shipped environments campaign parses");
    c.train = c.train.min(effort.n_train);
    c.test = c.test.min(effort.n_test);
    let outcome = crate::campaign::run_campaign(&c);
    for (env, cell) in c.axes.environments.iter().zip(&outcome.cells) {
        println!(
            "  {:<8}: accuracy {}  (dropped {})",
            env.name(),
            pct(cell.accuracy),
            cell.dropped
        );
    }
}
