//! Campaign runner: executes a parsed [`Campaign`] cell by cell through
//! the measurement harness, with cells fanned out over
//! [`wimi_core::par`] worker threads, and emits one `wimi-trace/1`
//! artifact per cell plus a `wimi-campaign/1` summary JSON.
//!
//! Determinism: each cell runs serially inside one worker, with its own
//! recorder and trace sink, and every measurement seed is a pure function
//! of the cell's derived seed — so per-cell artifacts are byte-identical
//! for any `WIMI_THREADS` setting, and re-running one cell in isolation
//! (`campaign-run --cell N`) reproduces the full run's artifact exactly.
//!
//! Schedule semantics: training always happens under the cell's *base*
//! axis conditions; the schedule perturbs test trials only, segment by
//! segment, which is what lets a scheduled fault ramp inside one cell
//! reproduce the shape of the PR2 degradation curve.

use std::sync::Arc;

use wimi_campaign::{
    cell_count, expand, fault_plan, lower, state_at, Campaign, CellPlan, StepState, TargetMode,
};
use wimi_core::{WiMi, WiMiConfig};
use wimi_ml::dataset::Dataset;
use wimi_obs::{CounterId, Recorder};
use wimi_phy::scenario::{Beaker, LiquidSpec};
use wimi_phy::units::Meters;
use wimi_trace::artifact::{cell_artifact_name, render_cell, CampaignTag};
use wimi_trace::{analyze, TraceSink};

use crate::harness::{measure_target, RunOptions};

/// Schema identifier of the campaign summary JSON.
pub const SUMMARY_SCHEMA: &str = "wimi-campaign/1";

/// Accuracy over one schedule segment of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentOutcome {
    /// First test trial of the segment.
    pub from: usize,
    /// Fault intensity in effect during the segment.
    pub intensity: f64,
    /// Correct test classifications inside the segment.
    pub correct: usize,
    /// Classified test measurements inside the segment (dropped trials
    /// excluded).
    pub total: usize,
}

impl SegmentOutcome {
    /// Segment accuracy (1.0 for an empty segment, matching an
    /// unfalsified claim).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Everything one cell produced: scores, work accounting, and its
/// rendered (self-validated) trace artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// Cell index in campaign expansion order.
    pub index: u64,
    /// The cell's derived seed (recorded in the artifact header).
    pub seed: u64,
    /// Overall test accuracy across all segments.
    pub accuracy: f64,
    /// Per-segment accuracies, schedule order.
    pub segments: Vec<SegmentOutcome>,
    /// Trials whose every measurement attempt failed.
    pub dropped: usize,
    /// Measurement attempts rejected by the pipeline.
    pub rejected: usize,
    /// Successful measurements that needed salvage.
    pub salvaged: usize,
    /// Hard measurement failures marked on the cell's trace sink.
    pub failures: u64,
    /// Trace events emitted by the cell.
    pub trace_events: u64,
    /// The cell's final obs counters (snapshot order).
    pub counters: Vec<(&'static str, u64)>,
    /// Canonical artifact file name for this cell.
    pub artifact_name: String,
    /// The rendered `wimi-trace/1` artifact text.
    pub artifact: String,
}

/// A completed campaign run: the campaign and every cell's outcome, in
/// expansion order.
pub struct CampaignOutcome {
    /// The campaign that ran.
    pub campaign: Campaign,
    /// Per-cell outcomes, expansion order.
    pub cells: Vec<CellOutcome>,
}

fn cell_options(
    c: &Campaign,
    cell: &CellPlan,
    state: &StepState,
    recorder: &Arc<Recorder>,
    sink: &Arc<TraceSink>,
) -> RunOptions {
    let distance_cm = cell.distance_cm;
    let diameter_cm = cell.diameter_cm;
    let container = cell.container;
    RunOptions {
        environment: state.environment,
        packets: cell.packets,
        n_train: c.train,
        n_test: c.test,
        seed: cell.seed,
        modify: Box::new(move |b| {
            b.link_distance(Meters::from_cm(distance_cm));
            b.beaker(
                Beaker::paper_default()
                    .with_diameter(Meters::from_cm(diameter_cm))
                    .with_material(container),
            );
        }),
        fault: fault_plan(state, c.fault_seed),
        recorder: Some(Arc::clone(recorder)),
        trace: Some(Arc::clone(sink)),
        ..RunOptions::default()
    }
}

/// Runs one cell serially: trains under the cell's base conditions, then
/// walks the test trials segment by segment under the scheduled
/// conditions, and renders the cell's tagged trace artifact.
///
/// A cell whose training set ends up with fewer than two populated
/// classes (every capture for the other classes was rejected or dropped
/// — possible under harsh axis combinations) is *untrainable*: the test
/// phase is skipped and the cell reports accuracy 0 over zero
/// classifications. This keeps campaign runs total — a degenerate cell
/// is a result, not a crash — and stays deterministic, since the skip is
/// a pure function of the cell's measurements.
///
/// # Panics
///
/// Panics if the cell's own artifact fails self-validation (a bug, not an
/// environmental failure).
pub fn run_cell(c: &Campaign, cell: &CellPlan) -> CellOutcome {
    let recorder = Arc::new(Recorder::enabled());
    let sink = TraceSink::enabled();
    let refs = cell.materials.resolve();
    let names: Vec<String> = refs.iter().map(|m| m.label()).collect();
    let specs: Vec<LiquidSpec> = refs.iter().map(|m| m.spec()).collect();
    let k = specs.len();

    let mut extractor = WiMi::new(WiMiConfig::default());
    extractor.set_recorder(Some(Arc::clone(&recorder)));
    extractor.set_trace(Some(Arc::clone(&sink)));

    let mut dropped = 0usize;
    let mut rejected = 0usize;
    let mut salvaged = 0usize;

    // Training always happens under the base axis conditions — even when
    // the schedule perturbs trial 0 — so the classifier models the clean
    // deployment and the schedule measures drift against it.
    let base = StepState {
        from: 0,
        intensity: cell.intensity,
        environment: cell.environment,
        target: TargetMode::Present,
        dropout: None,
    };
    let train_opts = cell_options(c, cell, &base, &recorder, &sink);
    let mut train = Dataset::new(names.clone());
    for trial in 0..c.train {
        for (label, spec) in specs.iter().enumerate() {
            let seed = cell.seed + 1_000 + trial as u64 * 131 + label as u64;
            let (feat, stats) = measure_target(&extractor, Some(spec), &train_opts, seed);
            rejected += stats.rejected;
            salvaged += stats.salvaged as usize;
            match feat {
                Some(f) => train.push(f.as_vector(), label),
                None => dropped += 1,
            }
        }
    }

    let populated = train.class_counts().iter().filter(|&&n| n > 0).count();
    let trained = if populated >= 2 {
        let mut wimi = WiMi::new(WiMiConfig::default());
        wimi.set_recorder(Some(Arc::clone(&recorder)));
        wimi.set_trace(Some(Arc::clone(&sink)));
        wimi.train_on_dataset(&train);
        Some(wimi)
    } else {
        None
    };

    // Test phase: one segment of scheduled conditions at a time. An
    // untrainable cell skips it and scores zero over zero trials.
    let steps = lower(c, cell);
    let mut segments: Vec<SegmentOutcome> = steps
        .iter()
        .map(|s| SegmentOutcome {
            from: s.from,
            intensity: s.intensity,
            correct: 0,
            total: 0,
        })
        .collect();
    let test_trials = if trained.is_some() { c.test } else { 0 };
    for trial in 0..test_trials {
        let state = state_at(&steps, trial);
        let seg = segments
            .iter_mut()
            .rfind(|s| s.from <= trial)
            .expect("segment 0 starts at trial 0");
        let opts = cell_options(c, cell, state, &recorder, &sink);
        for label in 0..k {
            let seed = cell.seed + 900_000 + trial as u64 * 137 + label as u64;
            let spec = match state.target {
                TargetMode::Present => Some(&specs[label]),
                // The operator (or an adversary) swapped in the next
                // catalog entry; the truth label still claims the
                // original, so correct behaviour is a mismatch.
                TargetMode::Swapped => Some(&specs[(label + 1) % k]),
                TargetMode::Removed => None,
            };
            let (feat, stats) = measure_target(&extractor, spec, &opts, seed);
            rejected += stats.rejected;
            salvaged += stats.salvaged as usize;
            match feat {
                Some(f) => {
                    let wimi = trained.as_ref().expect("test phase only runs when trained");
                    let predicted = wimi.classify_feature(&f).expect("trained");
                    seg.total += 1;
                    if predicted == label && state.target == TargetMode::Present {
                        seg.correct += 1;
                    }
                }
                None => dropped += 1,
            }
        }
    }
    recorder.add(CounterId::TrialsDropped, dropped as u64);

    let (correct, total) = segments.iter().fold((0usize, 0usize), |(c0, t0), s| {
        (c0 + s.correct, t0 + s.total)
    });
    let accuracy = if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    };

    let snapshot = recorder.snapshot();
    let log = sink.flush();
    let tag = CampaignTag {
        campaign: c.name.clone(),
        cell: cell.index,
        cell_seed: cell.seed,
    };
    let artifact = render_cell(&log, Some(&snapshot.to_json()), Some(&tag));
    if let Err(e) = wimi_trace::artifact::parse_and_validate(&artifact) {
        panic!("cell {} artifact failed self-validation: {e}", cell.index);
    }
    CellOutcome {
        index: cell.index,
        seed: cell.seed,
        accuracy,
        segments,
        dropped,
        rejected,
        salvaged,
        failures: log.failures,
        trace_events: log.events_emitted,
        counters: snapshot.counters.clone(),
        artifact_name: cell_artifact_name(&c.name, cell.index),
        artifact,
    }
}

/// Runs every cell of the campaign, fanning cells out over
/// [`wimi_core::par`] worker threads. Outcomes come back in expansion
/// order regardless of thread count.
pub fn run_campaign(c: &Campaign) -> CampaignOutcome {
    let cells = expand(c);
    let outcomes = wimi_core::par::map(&cells, |_, cell| run_cell(c, cell));
    CampaignOutcome {
        campaign: c.clone(),
        cells: outcomes,
    }
}

/// Sums every cell's obs counters plus the per-cell trace emissions into
/// `(name, total)` rows, canonical counter order, with `trace_events`
/// first — the shape the `work_budgets` gate reads.
pub fn work_totals(outcome: &CampaignOutcome) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = vec![(
        "trace_events".to_owned(),
        outcome.cells.iter().map(|c| c.trace_events).sum(),
    )];
    for cell in &outcome.cells {
        for &(name, value) in &cell.counters {
            match rows.iter_mut().find(|(n, _)| n == name) {
                Some((_, total)) => *total += value,
                None => rows.push((name.to_owned(), value)),
            }
        }
    }
    rows
}

fn json_f64(x: f64) -> String {
    // Summary accuracies are ratios of small integers; six decimals are
    // exact enough to be stable and deterministic across platforms.
    format!("{x:.6}")
}

/// Renders the campaign summary JSON (`wimi-campaign/1`): campaign
/// identity, aggregated work totals, and one record per cell with its
/// seed, scores and artifact name. Field order and formatting are fixed,
/// so equal outcomes render byte-identically.
// wlint: artifact
pub fn summary_json(outcome: &CampaignOutcome) -> String {
    use std::fmt::Write as _;
    let c = &outcome.campaign;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SUMMARY_SCHEMA}\",");
    let _ = writeln!(out, "  \"campaign\": \"{}\",", c.name);
    let _ = writeln!(out, "  \"seed\": {},", c.seed);
    let _ = writeln!(out, "  \"fault_seed\": {},", c.fault_seed);
    let _ = writeln!(out, "  \"train\": {},", c.train);
    let _ = writeln!(out, "  \"test\": {},", c.test);
    let _ = writeln!(out, "  \"cells\": {},", outcome.cells.len());
    out.push_str("  \"work_totals\": {\n");
    let totals = work_totals(outcome);
    for (i, (name, value)) in totals.iter().enumerate() {
        let comma = if i + 1 < totals.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {value}{comma}");
    }
    out.push_str("  },\n");
    out.push_str("  \"cell_results\": [\n");
    for (i, cell) in outcome.cells.iter().enumerate() {
        let comma = if i + 1 < outcome.cells.len() { "," } else { "" };
        let segs: Vec<String> = cell
            .segments
            .iter()
            .map(|s| {
                format!(
                    "{{\"from\": {}, \"intensity\": {}, \"accuracy\": {}}}",
                    s.from,
                    json_f64(s.intensity),
                    json_f64(s.accuracy())
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "    {{\"cell\": {}, \"seed\": {}, \"accuracy\": {}, \"dropped\": {}, \
             \"rejected\": {}, \"salvaged\": {}, \"failures\": {}, \"artifact\": \"{}\", \
             \"segments\": [{}]}}{comma}",
            cell.index,
            cell.seed,
            json_f64(cell.accuracy),
            cell.dropped,
            cell.rejected,
            cell.salvaged,
            cell.failures,
            cell.artifact_name,
            segs.join(", ")
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Checks a campaign's aggregated work totals against the `work_budgets`
/// object of a committed bench summary (`BENCH_PR7.json`), mirroring the
/// `wimi-trace` budget gate: exceeding any ceiling fails, and so does a
/// budget name with no matching total.
///
/// # Errors
///
/// One-line message for unparsable bench JSON, a missing/empty
/// `work_budgets` object, or an unknown budget name.
pub fn check_campaign_budgets(
    bench_json: &str,
    outcome: &CampaignOutcome,
) -> Result<Vec<analyze::BudgetRow>, String> {
    let bench = wimi_obs::json::parse(bench_json).map_err(|e| format!("bench summary: {e}"))?;
    let Some(wimi_obs::json::Json::Obj(budgets)) = bench.get("work_budgets") else {
        return Err("bench summary has no \"work_budgets\" object".into());
    };
    if budgets.is_empty() {
        return Err("\"work_budgets\" is empty — nothing to gate on".into());
    }
    let totals = work_totals(outcome);
    let mut rows = Vec::new();
    for (name, value) in budgets {
        let budget = value
            .as_u64()
            .ok_or_else(|| format!("budget \"{name}\" must be a non-negative integer"))?;
        let actual = totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("budget \"{name}\" does not match any campaign work total"))?;
        rows.push(analyze::BudgetRow {
            name: name.clone(),
            actual,
            budget,
            ok: actual <= budget,
        });
    }
    Ok(rows)
}

fn read_campaign(path: &str) -> Campaign {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaign-run: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match wimi_campaign::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `campaign-validate PATH`: parses and validates a campaign file,
/// printing its expanded size, or a one-line error on stderr with exit 1
/// (mirroring `obs-validate`).
pub fn campaign_validate(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("campaign-validate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match wimi_campaign::parse(&text) {
        Ok(c) => {
            println!(
                "ok: campaign \"{}\", {} cells, {} train + {} test trials per cell, {} schedule entries",
                c.name,
                cell_count(&c),
                c.train,
                c.test,
                c.schedule.len()
            );
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn write_file(path: &std::path::Path, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("campaign-run: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
}

/// `campaign-run PATH [--campaign-out DIR] [--cell N] [--check BENCH]`:
/// runs a campaign end to end, printing the per-cell score table and
/// writing per-cell artifacts plus the summary JSON into `DIR` when
/// given. `--cell N` runs that one cell in isolation (its artifact must
/// reproduce the full run's byte for byte — CI replays cells this way).
/// `--check BENCH` gates the aggregated work totals against the bench
/// file's `work_budgets` and exits 1 when any ceiling is exceeded.
pub fn campaign_run(path: &str, out_dir: Option<&str>, cell: Option<u64>, check: Option<&str>) {
    let c = read_campaign(path);
    let dir = out_dir.map(std::path::Path::new);
    if let Some(dir) = dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("campaign-run: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
    }

    if let Some(index) = cell {
        // Single-cell replay: expand deterministically, run one cell.
        let cells = expand(&c);
        let Some(plan) = cells.iter().find(|p| p.index == index) else {
            eprintln!(
                "campaign-run: cell {index} out of range (campaign \"{}\" has {} cells)",
                c.name,
                cells.len()
            );
            std::process::exit(1);
        };
        let outcome = run_cell(&c, plan);
        println!(
            "cell {:>4}  seed {:>20}  accuracy {:.3}  dropped {}  rejected {}",
            outcome.index, outcome.seed, outcome.accuracy, outcome.dropped, outcome.rejected
        );
        if let Some(dir) = dir {
            let path = dir.join(&outcome.artifact_name);
            write_file(&path, &outcome.artifact);
            println!("artifact written to {}", path.display());
        }
        return;
    }

    let outcome = run_campaign(&c);
    println!(
        "campaign \"{}\": {} cells, {} train + {} test trials per cell",
        c.name,
        outcome.cells.len(),
        c.train,
        c.test
    );
    for cell in &outcome.cells {
        println!(
            "cell {:>4}  seed {:>20}  accuracy {:.3}  dropped {}  rejected {}",
            cell.index, cell.seed, cell.accuracy, cell.dropped, cell.rejected
        );
    }
    let mean: f64 = if outcome.cells.is_empty() {
        0.0
    } else {
        outcome.cells.iter().map(|c| c.accuracy).sum::<f64>() / outcome.cells.len() as f64
    };
    println!(
        "mean accuracy {:.3} over {} cells",
        mean,
        outcome.cells.len()
    );

    if let Some(dir) = dir {
        for cell in &outcome.cells {
            write_file(&dir.join(&cell.artifact_name), &cell.artifact);
        }
        let summary_name = format!("{}-summary.json", c.name);
        write_file(&dir.join(&summary_name), &summary_json(&outcome));
        println!(
            "{} artifacts + {summary_name} written to {}",
            outcome.cells.len(),
            dir.display()
        );
    }

    if let Some(bench_path) = check {
        let bench = match std::fs::read_to_string(bench_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("campaign-run: cannot read {bench_path}: {e}");
                std::process::exit(2);
            }
        };
        match check_campaign_budgets(&bench, &outcome) {
            Ok(rows) => {
                print!("{}", analyze::budget_table(&rows));
                if rows.iter().any(|r| !r.ok) {
                    eprintln!("campaign-run: work budget exceeded (see table above)");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("campaign-run: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// `campaign-diff DIR_A DIR_B`: compares the `.jsonl` artifacts of two
/// campaign output directories for byte-identity (the thread-count
/// invariance gate). File sets must match; the first divergence is
/// reported with the `wimi-trace` diff context. Exit 0 iff identical.
pub fn campaign_diff(dir_a: &str, dir_b: &str) {
    let list = |dir: &str| -> Vec<String> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("campaign-diff: cannot read {dir}: {e}");
                std::process::exit(2);
            }
        };
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".jsonl"))
            .collect();
        names.sort();
        names
    };
    let a_names = list(dir_a);
    let b_names = list(dir_b);
    if a_names != b_names {
        eprintln!(
            "campaign-diff: artifact sets differ ({} files in {dir_a}, {} in {dir_b})",
            a_names.len(),
            b_names.len()
        );
        std::process::exit(1);
    }
    if a_names.is_empty() {
        eprintln!("campaign-diff: no .jsonl artifacts in {dir_a}");
        std::process::exit(2);
    }
    for name in &a_names {
        let read = |dir: &str| -> String {
            let path = std::path::Path::new(dir).join(name);
            match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("campaign-diff: cannot read {}: {e}", path.display());
                    std::process::exit(2);
                }
            }
        };
        let a = read(dir_a);
        let b = read(dir_b);
        match analyze::diff(&a, &b) {
            analyze::DiffOutcome::Identical => {}
            analyze::DiffOutcome::Diverged { report, .. } => {
                eprintln!("campaign-diff: {name} diverges:");
                eprint!("{report}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "identical: {} artifacts match between {dir_a} and {dir_b}",
        a_names.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_campaign() -> Campaign {
        wimi_campaign::parse(
            "campaign tiny\nseed 77\ntrain 3\ntest 4\n\
             axis materials = PureWater+Honey\n\
             axis packets = 10\n\
             axis intensity = 0, 0.3\n\
             at 2 fault 0.6\n",
        )
        .expect("valid campaign")
    }

    #[test]
    fn cells_run_deterministically_and_tag_artifacts() {
        let c = tiny_campaign();
        let cells = expand(&c);
        assert_eq!(cells.len(), 2);
        let a = run_cell(&c, &cells[0]);
        let b = run_cell(&c, &cells[0]);
        assert_eq!(a.artifact, b.artifact, "cell re-run must be byte-identical");
        assert_eq!(a.accuracy, b.accuracy);
        let parsed = wimi_trace::artifact::parse_and_validate(&a.artifact).expect("validates");
        let tag = parsed.campaign.expect("campaign tag");
        assert_eq!(tag.campaign, "tiny");
        assert_eq!(tag.cell, 0);
        assert_eq!(tag.cell_seed, cells[0].seed);
    }

    #[test]
    fn campaign_outcome_summary_is_stable_and_budgetable() {
        let c = tiny_campaign();
        let outcome = run_campaign(&c);
        assert_eq!(outcome.cells.len(), 2);
        // Each cell carries its own segment table: base + the at-2 ramp.
        assert_eq!(outcome.cells[0].segments.len(), 2);
        let summary = summary_json(&outcome);
        assert_eq!(summary, summary_json(&outcome));
        let parsed = wimi_obs::json::parse(&summary).expect("summary is valid JSON");
        assert_eq!(
            parsed.get("schema").and_then(wimi_obs::json::Json::as_str),
            Some(SUMMARY_SCHEMA)
        );
        assert_eq!(
            parsed.get("cells").and_then(wimi_obs::json::Json::as_u64),
            Some(2)
        );
        // The totals gate accepts a bench file with generous ceilings…
        let bench =
            "{\"work_budgets\": {\"trace_events\": 99999999, \"captures_taken\": 99999999}}";
        let rows = check_campaign_budgets(bench, &outcome).expect("budgets check");
        assert!(rows.iter().all(|r| r.ok));
        // …and fails closed on an unknown budget name.
        let bad = "{\"work_budgets\": {\"warp_drives\": 1}}";
        assert!(check_campaign_budgets(bad, &outcome).is_err());
    }
}
