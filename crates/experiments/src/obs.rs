//! Observability report: runs a small identification campaign with a
//! [`wimi_obs::Recorder`] attached and prints the pipeline's structured
//! self-accounting — stage spans, counters, quality issues, and the γ /
//! dispersion / retry histograms.
//!
//! The default clock is [`wimi_obs::NullClock`], so the report is
//! bit-identical for any `WIMI_THREADS` and safe to diff in CI. Pass
//! `--obs-wall` on the CLI for real (non-deterministic) span timings.

use crate::accuracy::Effort;
use crate::harness::{heading, paper_liquids, run_identification, RunOptions};
use std::sync::Arc;
use wimi_obs::{validate_json, Clock, Recorder};

/// Wall-clock [`Clock`] for interactive runs: nanoseconds since the clock
/// was created. Opt-in only (`--obs-wall`) because it breaks run-to-run
/// determinism by design.
#[derive(Debug)]
pub struct WallClock {
    start: std::time::Instant,
}

impl WallClock {
    /// Starts the clock at construction time.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Runs a reduced identification campaign with a recorder attached and
/// prints the snapshot summary. With `json_path`, also exports the
/// snapshot as JSON (validated against the `wimi-obs/1` schema before it
/// is written). `wall` swaps in [`WallClock`] timings.
pub fn obs_report(effort: Effort, json_path: Option<&str>, wall: bool) {
    heading("obs-report", "pipeline observability snapshot");

    let recorder = if wall {
        Arc::new(Recorder::with_clock(Arc::new(WallClock::new())))
    } else {
        Arc::new(Recorder::enabled())
    };

    // A small but non-trivial campaign: all ten liquids, reduced trials,
    // so every stage (capture → classification) and the retry/salvage
    // paths get exercised.
    let opts = RunOptions {
        n_train: effort.n_train.min(4),
        n_test: effort.n_test.min(3),
        packets: 12,
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    let result = run_identification(&paper_liquids(), &opts);
    println!(
        "accuracy {:.3} over {} liquids ({} train + {} test per material)",
        result.accuracy(),
        paper_liquids().len(),
        opts.n_train,
        opts.n_test,
    );
    println!();

    let snap = recorder.snapshot();
    print!("{}", snap.summary());

    let json = snap.to_json();
    if let Err(e) = validate_json(&json) {
        println!("exported JSON FAILED self-validation: {e}");
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        std::fs::write(path, &json).expect("write obs JSON");
        println!("snapshot written to {path} ({} bytes)", json.len());
    }
}

/// Validates a previously exported snapshot file against the `wimi-obs/1`
/// schema, returning the one-line success report.
///
/// # Errors
///
/// A one-line message naming the file and what failed: unreadable file,
/// schema-version mismatch (quoting both versions), or truncated JSON.
pub fn validate_snapshot_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    validate_json(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!(
        "{path}: valid wimi-obs/1 snapshot ({} bytes)",
        text.len()
    ))
}

/// CLI wrapper over [`validate_snapshot_file`]: prints the report and
/// exits non-zero with a one-line message on failure (CI entry point).
pub fn obs_validate(path: &str) {
    match validate_snapshot_file(path) {
        Ok(line) => println!("{line}"),
        Err(e) => {
            eprintln!("obs-validate: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("wimi-obs-test-{}-{name}", std::process::id()));
        std::fs::write(&path, contents).expect("write temp snapshot");
        path
    }

    #[test]
    fn schema_version_mismatch_is_a_one_line_error() {
        let json = Recorder::enabled().snapshot().to_json();
        let bumped = json.replace("wimi-obs/1", "wimi-obs/2");
        let path = temp_file("schema.json", &bumped);
        let err = validate_snapshot_file(path.to_str().expect("utf-8 path"))
            .expect_err("future schema must be rejected");
        let _ = std::fs::remove_file(&path);
        assert!(
            err.contains("schema version mismatch"),
            "message must name the failure class: {err}"
        );
        assert!(
            err.contains("wimi-obs/2") && err.contains("wimi-obs/1"),
            "message must quote both versions: {err}"
        );
        assert!(!err.contains('\n'), "message must be one line: {err:?}");
    }

    #[test]
    fn truncated_snapshot_is_a_one_line_error() {
        let json = Recorder::enabled().snapshot().to_json();
        let path = temp_file("truncated.json", &json[..json.len() / 2]);
        let err = validate_snapshot_file(path.to_str().expect("utf-8 path"))
            .expect_err("truncated snapshot must be rejected");
        let _ = std::fs::remove_file(&path);
        assert!(
            err.contains("truncated JSON"),
            "message must name the failure class: {err}"
        );
        assert!(!err.contains('\n'), "message must be one line: {err:?}");
    }
}
