//! Observability report: runs a small identification campaign with a
//! [`wimi_obs::Recorder`] attached and prints the pipeline's structured
//! self-accounting — stage spans, counters, quality issues, and the γ /
//! dispersion / retry histograms.
//!
//! The default clock is [`wimi_obs::NullClock`], so the report is
//! bit-identical for any `WIMI_THREADS` and safe to diff in CI. Pass
//! `--obs-wall` on the CLI for real (non-deterministic) span timings.

use crate::accuracy::Effort;
use crate::harness::{heading, paper_liquids, run_identification, RunOptions};
use std::sync::Arc;
use wimi_obs::{validate_json, Clock, Recorder};

/// Wall-clock [`Clock`] for interactive runs: nanoseconds since the clock
/// was created. Opt-in only (`--obs-wall`) because it breaks run-to-run
/// determinism by design.
#[derive(Debug)]
pub struct WallClock {
    start: std::time::Instant,
}

impl WallClock {
    /// Starts the clock at construction time.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        WallClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Runs a reduced identification campaign with a recorder attached and
/// prints the snapshot summary. With `json_path`, also exports the
/// snapshot as JSON (validated against the `wimi-obs/1` schema before it
/// is written). `wall` swaps in [`WallClock`] timings.
pub fn obs_report(effort: Effort, json_path: Option<&str>, wall: bool) {
    heading("obs-report", "pipeline observability snapshot");

    let recorder = if wall {
        Arc::new(Recorder::with_clock(Arc::new(WallClock::new())))
    } else {
        Arc::new(Recorder::enabled())
    };

    // A small but non-trivial campaign: all ten liquids, reduced trials,
    // so every stage (capture → classification) and the retry/salvage
    // paths get exercised.
    let opts = RunOptions {
        n_train: effort.n_train.min(4),
        n_test: effort.n_test.min(3),
        packets: 12,
        recorder: Some(Arc::clone(&recorder)),
        ..RunOptions::default()
    };
    let result = run_identification(&paper_liquids(), &opts);
    println!(
        "accuracy {:.3} over {} liquids ({} train + {} test per material)",
        result.accuracy(),
        paper_liquids().len(),
        opts.n_train,
        opts.n_test,
    );
    println!();

    let snap = recorder.snapshot();
    print!("{}", snap.summary());

    let json = snap.to_json();
    if let Err(e) = validate_json(&json) {
        println!("exported JSON FAILED self-validation: {e}");
        std::process::exit(1);
    }
    if let Some(path) = json_path {
        std::fs::write(path, &json).expect("write obs JSON");
        println!("snapshot written to {path} ({} bytes)", json.len());
    }
}

/// Validates a previously exported snapshot file against the `wimi-obs/1`
/// schema. Exits non-zero on failure (CI entry point).
pub fn obs_validate(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_json(&text) {
        Ok(()) => println!("{path}: valid wimi-obs/1 snapshot ({} bytes)", text.len()),
        Err(e) => {
            eprintln!("obs-validate: {path}: {e}");
            std::process::exit(1);
        }
    }
}
