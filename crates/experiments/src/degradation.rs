//! Degradation curves: identification accuracy vs fault intensity.
//!
//! The paper's three-room evaluation is a robustness study on *benign*
//! hardware; this experiment goes further and sweeps a hostile
//! [`FaultPlan`] (packet loss, antenna dropout, AGC jumps, saturation,
//! interference bursts, stale duplicates — see `wimi_phy::fault`) from
//! intensity 0 (bit-identical to the un-faulted simulator) upward. It
//! reports, per intensity, the accuracy plus how hard the salvage and
//! retry machinery had to work — the degradation curve the ROADMAP's
//! "graceful under hostile inputs" goal asks for.

use crate::accuracy::Effort;
use crate::harness::{self, heading, pct, run_identification, RunOptions};
use wimi_phy::fault::FaultPlan;

/// Fault intensities swept, as multipliers on [`FaultPlan::hostile`].
pub const INTENSITIES: [f64; 4] = [0.0, 0.1, 0.2, 0.4];

/// Seed of the hostile plan (measurements reseed it individually).
const FAULT_SEED: u64 = 0xFA17;

/// Builds the fault plan for one sweep point (`None` at intensity 0, so
/// the origin of the curve is exactly the un-faulted simulator).
pub fn plan_at(intensity: f64) -> Option<FaultPlan> {
    // Intensities are non-negative multipliers; the sweep origin is 0.
    if intensity <= 0.0 {
        None
    } else {
        Some(FaultPlan::hostile(FAULT_SEED).scaled(intensity))
    }
}

/// Runs the ten-liquid identification under each fault intensity and
/// prints the accuracy-vs-intensity table.
pub fn degradation(effort: Effort) {
    heading("Degradation", "accuracy vs fault intensity (ten liquids)");
    let materials = harness::paper_liquids();
    println!(
        "  {:>9} {:>9} {:>9} {:>9} {:>9}",
        "intensity", "accuracy", "dropped", "rejected", "salvaged"
    );
    let mut accs = Vec::new();
    for intensity in INTENSITIES {
        let opts = RunOptions {
            n_train: effort.n_train,
            n_test: effort.n_test,
            fault: plan_at(intensity),
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!(
            "  {:>9.2} {:>9} {:>9} {:>9} {:>9}",
            intensity,
            pct(result.accuracy()),
            result.dropped_trials,
            result.rejected_measurements,
            result.salvaged_measurements,
        );
        accs.push(result.accuracy());
    }
    let monotone = accs.windows(2).all(|w| w[1] <= w[0] + 0.05);
    println!(
        "graceful shape: accuracy decays with intensity, no cliff → {}",
        if monotone && accs[0] > 0.5 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
