//! Degradation curves: identification accuracy vs fault intensity.
//!
//! The paper's three-room evaluation is a robustness study on *benign*
//! hardware; this experiment goes further and sweeps a hostile
//! [`wimi_phy::fault::FaultPlan`] (packet loss, antenna dropout, AGC
//! jumps, saturation, interference bursts, stale duplicates) from
//! intensity 0 (bit-identical to the un-faulted simulator) upward.
//!
//! Since PR 7 the sweep is declared in `campaigns/degradation.campaign`
//! — one campaign cell per intensity — and executed by the campaign
//! runner, so the same grid is available to `campaign-run` for artifact
//! emission and replay. The experiment keeps its historical report: the
//! accuracy-vs-intensity table plus the graceful-shape verdict.

use crate::accuracy::Effort;
use crate::campaign::{run_campaign, CampaignOutcome};
use crate::harness::{heading, pct};
use wimi_campaign::Campaign;

/// The shipped degradation campaign file, embedded so the experiment
/// runs from any working directory.
pub const CAMPAIGN_TEXT: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../campaigns/degradation.campaign"
));

/// Parses the shipped campaign, clamping trial counts to the effort
/// level (the file declares the full-effort counts).
///
/// # Panics
///
/// Panics if the shipped campaign file fails to parse — a build bug, not
/// an environmental failure.
pub fn campaign(effort: Effort) -> Campaign {
    let mut c = wimi_campaign::parse(CAMPAIGN_TEXT).expect("shipped degradation campaign parses");
    c.train = c.train.min(effort.n_train);
    c.test = c.test.min(effort.n_test);
    c
}

/// `true` when the per-cell accuracies decay monotonically within a
/// small sampling-noise allowance and the clean origin clears 50%.
pub fn graceful(outcome: &CampaignOutcome) -> bool {
    let accs: Vec<f64> = outcome.cells.iter().map(|c| c.accuracy).collect();
    let monotone = accs.windows(2).all(|w| w[1] <= w[0] + 0.05);
    monotone && accs.first().copied().unwrap_or(0.0) > 0.5
}

/// Runs the ten-liquid identification under each fault intensity (one
/// campaign cell per intensity) and prints the accuracy-vs-intensity
/// table.
pub fn degradation(effort: Effort) {
    heading("Degradation", "accuracy vs fault intensity (ten liquids)");
    let outcome = run_campaign(&campaign(effort));
    println!(
        "  {:>9} {:>9} {:>9} {:>9} {:>9}",
        "intensity", "accuracy", "dropped", "rejected", "salvaged"
    );
    for cell in &outcome.cells {
        let intensity = cell.segments.first().map_or(0.0, |s| s.intensity);
        println!(
            "  {:>9.2} {:>9} {:>9} {:>9} {:>9}",
            intensity,
            pct(cell.accuracy),
            cell.dropped,
            cell.rejected,
            cell.salvaged,
        );
    }
    println!(
        "graceful shape: accuracy decays with intensity, no cliff → {}",
        if graceful(&outcome) {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
