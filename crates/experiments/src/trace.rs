//! Flight-recorder trace report: runs the observability campaign with a
//! [`wimi_trace::TraceSink`] attached and renders the `wimi-trace/1`
//! JSONL artifact — the ordered, per-task event log that the aggregate
//! `obs-report` snapshot throws away.
//!
//! Traces carry no wall time and order events by `(task, seq)` logical
//! clocks, so the artifact is byte-identical for any `WIMI_THREADS`
//! setting — CI proves it by diffing a 1-thread run against a 4-thread
//! run with `wimi-trace diff`.

use crate::accuracy::Effort;
use crate::harness::{heading, paper_liquids, run_identification, RunOptions, RunResult};
use std::sync::Arc;
use wimi_obs::Recorder;
use wimi_phy::fault::FaultPlan;
use wimi_trace::{analyze, artifact, TraceSink};

/// Outcome of the shared trace campaign: the run result plus the two
/// observability sinks it filled.
pub struct TraceCampaign {
    /// Identification result of the campaign.
    pub result: RunResult,
    /// Aggregate recorder (embedded into the artifact's final line).
    pub recorder: Arc<Recorder>,
    /// Flight-recorder sink holding the ordered event streams.
    pub sink: Arc<TraceSink>,
}

/// Runs the reduced ten-liquid identification campaign with both a
/// recorder and a trace sink attached, optionally under a fault plan.
///
/// Trial counts are clamped exactly like `obs-report`'s, so `--quick`
/// and full runs execute the same campaign and trace identically — which
/// is what lets `BENCH_PR5.json` commit hard work-counter budgets for it.
pub fn trace_campaign_with(effort: Effort, fault: Option<FaultPlan>) -> TraceCampaign {
    let recorder = Arc::new(Recorder::enabled());
    let sink = TraceSink::enabled();
    let opts = RunOptions {
        n_train: effort.n_train.min(4),
        n_test: effort.n_test.min(3),
        packets: 12,
        fault,
        recorder: Some(Arc::clone(&recorder)),
        trace: Some(Arc::clone(&sink)),
        ..RunOptions::default()
    };
    let result = run_identification(&paper_liquids(), &opts);
    TraceCampaign {
        result,
        recorder,
        sink,
    }
}

/// [`trace_campaign_with`] on a healthy (fault-free) deployment.
pub fn trace_campaign(effort: Effort) -> TraceCampaign {
    trace_campaign_with(effort, None)
}

/// Renders the campaign's flushed trace with the final obs snapshot
/// embedded, and self-validates the text before returning it.
///
/// # Errors
///
/// The validator's message when the rendered artifact violates its own
/// schema (a bug, not an environmental failure).
pub fn render_artifact(campaign: &TraceCampaign) -> Result<String, String> {
    let obs = campaign.recorder.snapshot().to_json();
    let text = artifact::render(&campaign.sink.flush(), Some(&obs));
    artifact::parse_and_validate(&text)?;
    Ok(text)
}

/// Writes the campaign's artifact to `path` only when the sink recorded
/// hard failures (a measurement exhausted its retry policy) — the
/// dump-on-failure protocol. Returns the dump size when one was written.
///
/// # Errors
///
/// Render/self-validation errors from [`render_artifact`] and I/O errors
/// writing the dump.
pub fn write_failure_dump(campaign: &TraceCampaign, path: &str) -> Result<Option<usize>, String> {
    if campaign.sink.failures() == 0 {
        return Ok(None);
    }
    let text = render_artifact(campaign)?;
    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(Some(text.len()))
}

/// Runs the trace campaign, prints the deterministic summary, and (with
/// `out_path`) writes the validated artifact. Exits non-zero if the
/// artifact fails self-validation.
pub fn trace_report(effort: Effort, out_path: Option<&str>) {
    heading("trace-report", "flight-recorder trace artifact");
    let campaign = trace_campaign(effort);
    println!(
        "accuracy {:.3} over {} liquids, {} hard measurement failures",
        campaign.result.accuracy(),
        paper_liquids().len(),
        campaign.sink.failures(),
    );
    println!();
    let text = match render_artifact(&campaign) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: artifact FAILED self-validation: {e}");
            std::process::exit(1);
        }
    };
    match analyze::summary(&text) {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("trace-report: summary failed on validated artifact: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("trace-report: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("trace written to {path} ({} bytes)", text.len());
    }
}

/// Diffs two trace artifacts, printing the first divergence with context.
/// Exits 0 iff the files are byte-identical (CI entry point).
pub fn trace_diff(a_path: &str, b_path: &str) {
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let a = read(a_path);
    let b = read(b_path);
    match analyze::diff(&a, &b) {
        analyze::DiffOutcome::Identical => {
            println!("identical: {a_path} == {b_path}");
        }
        analyze::DiffOutcome::Diverged { report, .. } => {
            eprint!("{report}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_artifact_validates_and_is_reproducible() {
        let a = render_artifact(&trace_campaign(Effort::quick())).expect("valid artifact");
        let b = render_artifact(&trace_campaign(Effort::quick())).expect("valid artifact");
        assert_eq!(a, b, "same campaign must render byte-identical traces");
        let parsed = artifact::parse_and_validate(&a).expect("validates");
        assert!(parsed.header.events > 0, "campaign must emit events");
        assert!(
            parsed.obs != wimi_obs::json::Json::Null,
            "artifact must embed the obs snapshot"
        );
    }

    #[test]
    fn failure_dump_matches_the_sinks_failure_state() {
        let campaign = trace_campaign(Effort::quick());
        let path =
            std::env::temp_dir().join(format!("wimi-trace-dump-test-{}.jsonl", std::process::id()));
        let path_str = path.to_str().expect("utf-8 path");
        let dump = write_failure_dump(&campaign, path_str).expect("dump must not error");
        if campaign.sink.failures() == 0 {
            assert_eq!(dump, None, "no failures must mean no dump");
            assert!(!path.exists());
        } else {
            let bytes = dump.expect("failures must produce a dump");
            let text = std::fs::read_to_string(&path).expect("dump written");
            let _ = std::fs::remove_file(&path);
            assert_eq!(text.len(), bytes);
            let parsed = artifact::parse_and_validate(&text).expect("dump validates");
            assert_eq!(parsed.header.failures, campaign.sink.failures());
        }
    }
}
