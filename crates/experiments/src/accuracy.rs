//! Identification-accuracy figures (paper Figs. 13–21).

use crate::harness::{heading, paper_liquids, pct, run_identification, Material, RunOptions};
use wimi_core::amplitude::AmplitudeConfig;
use wimi_core::antenna::PairSelection;
use wimi_core::subcarrier::SubcarrierSelection;
use wimi_core::WiMiConfig;
use wimi_phy::channel::Environment;
use wimi_phy::material::{ContainerMaterial, Liquid, SaltwaterConcentration};
use wimi_phy::scenario::Beaker;
use wimi_phy::units::Meters;

/// A quick/full switch: quick mode shrinks trial counts ~3× for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effort {
    /// Training measurements per material.
    pub n_train: usize,
    /// Test measurements per material.
    pub n_test: usize,
}

impl Effort {
    /// The paper's protocol: 20 measurements per material.
    pub fn full() -> Self {
        Effort {
            n_train: 20,
            n_test: 20,
        }
    }

    /// Reduced counts for smoke runs.
    pub fn quick() -> Self {
        Effort {
            n_train: 8,
            n_test: 6,
        }
    }
}

fn five_liquids() -> Vec<Material> {
    [
        Liquid::Pepsi,
        Liquid::Oil,
        Liquid::Vinegar,
        Liquid::Soy,
        Liquid::Milk,
    ]
    .iter()
    .copied()
    .map(Material::catalog)
    .collect()
}

/// Fig. 13: good subcarriers vs randomly chosen ones.
pub fn fig13(effort: Effort) {
    heading("Fig. 13", "identification with random vs good subcarriers");
    let materials = five_liquids();
    let cases: [(&str, SubcarrierSelection); 4] = [
        (
            "random {2, 7, 12}",
            SubcarrierSelection::Fixed(vec![2, 7, 12]),
        ),
        ("good, 1 subcarrier", SubcarrierSelection::BestByVariance(1)),
        (
            "good, 2 subcarriers",
            SubcarrierSelection::BestByVariance(2),
        ),
        ("good, 4 (combined)", SubcarrierSelection::BestByVariance(4)),
    ];
    let mut accs = Vec::new();
    for (name, sel) in cases {
        let config = WiMiConfig {
            subcarriers: sel,
            ..WiMiConfig::default()
        };
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!("  {name:<20}: accuracy {}", pct(result.accuracy()));
        accs.push(result.accuracy());
    }
    println!(
        "paper shape: good > random, combining helps → {}",
        if accs[3] > accs[0] {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 14: with vs without amplitude denoising.
pub fn fig14(effort: Effort) {
    heading("Fig. 14", "identification with/without amplitude denoising");
    let materials = five_liquids();
    let mut rows = Vec::new();
    for (name, amp) in [
        ("w/o noise removed", AmplitudeConfig::raw()),
        ("w noise removed", AmplitudeConfig::default()),
    ] {
        let config = WiMiConfig {
            amplitude: amp,
            ..WiMiConfig::default()
        };
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!(
            "  {name:<20}: accuracy {}  (per class: {})",
            pct(result.accuracy()),
            result
                .confusion
                .per_class_accuracy()
                .iter()
                .map(|a| pct(*a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        rows.push(result.accuracy());
    }
    println!(
        "paper shape: denoising consistently better → {}",
        if rows[1] >= rows[0] {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 15: the headline ten-liquid confusion matrix.
pub fn fig15(effort: Effort) {
    heading("Fig. 15", "ten-liquid identification (lab)");
    let opts = RunOptions {
        n_train: effort.n_train,
        n_test: effort.n_test,
        ..RunOptions::default()
    };
    let result = run_identification(&paper_liquids(), &opts);
    println!("{}", result.confusion);
    println!(
        "average accuracy = {} (paper: 96%)",
        pct(result.confusion.mean_per_class_accuracy())
    );
    println!(
        "dropped trials = {}, rejected measurements = {}",
        result.dropped_trials, result.rejected_measurements
    );
    let pepsi_coke_ok = result.confusion.rate(4, 4) >= 0.5 && result.confusion.rate(8, 8) >= 0.5;
    println!(
        "paper shape: high average, Pepsi/Coke hardest pair but >50% → {}",
        if pepsi_coke_ok {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 16: saltwater concentrations.
pub fn fig16(effort: Effort) {
    heading("Fig. 16", "saltwater concentration identification");
    let mut materials = vec![Material::catalog(Liquid::PureWater)];
    for (i, c) in SaltwaterConcentration::PAPER_SET.iter().enumerate() {
        materials.push(Material::saltwater(&format!("Saltwater {}", i + 1), *c));
    }
    let opts = RunOptions {
        n_train: effort.n_train,
        n_test: effort.n_test,
        ..RunOptions::default()
    };
    let result = run_identification(&materials, &opts);
    println!("{}", result.confusion);
    println!(
        "average accuracy = {} (paper: ≥95%)",
        pct(result.confusion.mean_per_class_accuracy())
    );
}

/// Fig. 17: accuracy vs transmitter–receiver distance.
pub fn fig17(effort: Effort) {
    heading("Fig. 17", "identification vs link distance");
    let materials = five_liquids();
    println!(
        "distance : {}",
        Environment::ALL
            .map(|e| format!("{:>8}", e.name()))
            .join(" ")
    );
    let mut first = None;
    let mut last = None;
    let distances = [1.0, 1.5, 2.0, 2.5, 3.0];
    let last_idx = distances.len() - 1;
    for (di, dist_m) in distances.into_iter().enumerate() {
        let mut row = format!("  {dist_m:.1} m  :");
        for env in Environment::ALL {
            let opts = RunOptions {
                environment: env,
                n_train: effort.n_train,
                n_test: effort.n_test,
                modify: Box::new(move |b| {
                    b.link_distance(Meters(dist_m));
                }),
                ..RunOptions::default()
            };
            let acc = run_identification(&materials, &opts).accuracy();
            row.push_str(&format!(" {:>8}", pct(acc)));
            if env == Environment::Lab {
                if di == 0 {
                    first = Some(acc);
                }
                if di == last_idx {
                    last = Some(acc);
                }
            }
        }
        println!("{row}");
    }
    println!(
        "paper shape: accuracy decays with distance (98% → 87%) → {}",
        match (first, last) {
            (Some(f), Some(l)) if l <= f => "REPRODUCED",
            _ => "NOT reproduced",
        }
    );
}

/// Fig. 18: accuracy vs packets per capture.
pub fn fig18(effort: Effort) {
    heading("Fig. 18", "identification vs packet count");
    let materials = five_liquids();
    println!(
        "packets : {}",
        Environment::ALL
            .map(|e| format!("{:>8}", e.name()))
            .join(" ")
    );
    let mut lab_accs = Vec::new();
    for packets in [3usize, 5, 10, 20, 30] {
        let mut row = format!("  {packets:>3}   :");
        for env in Environment::ALL {
            let opts = RunOptions {
                environment: env,
                packets,
                n_train: effort.n_train,
                n_test: effort.n_test,
                ..RunOptions::default()
            };
            let acc = run_identification(&materials, &opts).accuracy();
            row.push_str(&format!(" {:>8}", pct(acc)));
            if env == Environment::Lab {
                lab_accs.push(acc);
            }
        }
        println!("{row}");
    }
    println!(
        "paper shape: rises with packets, saturates by ~20 → {}",
        if lab_accs.last() >= lab_accs.first() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 19: accuracy vs beaker diameter (size independence until the
/// diameter drops below the wavelength).
pub fn fig19(effort: Effort) {
    heading("Fig. 19", "identification vs container size");
    let materials: Vec<Material> = [Liquid::PureWater, Liquid::Pepsi, Liquid::Vinegar]
        .iter()
        .copied()
        .map(Material::catalog)
        .collect();
    let mut accs = Vec::new();
    for (i, diameter_cm) in Beaker::PAPER_DIAMETERS_CM.iter().enumerate() {
        let d = *diameter_cm;
        let opts = RunOptions {
            n_train: effort.n_train,
            n_test: effort.n_test,
            modify: Box::new(move |b| {
                b.beaker(Beaker::paper_default().with_diameter(Meters::from_cm(d)));
            }),
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!(
            "  size {} (⌀ {d:>4.1} cm): accuracy {}  (dropped {})",
            i + 1,
            pct(result.accuracy()),
            result.dropped_trials
        );
        accs.push(result.accuracy());
    }
    println!(
        "paper shape: stable for large sizes, collapses below λ (3.2 cm) → {}",
        if accs[4] < accs[0] {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 20: container material (glass vs plastic; metal blocks).
pub fn fig20(effort: Effort) {
    heading("Fig. 20", "identification vs container material");
    let materials: Vec<Material> = [Liquid::PureWater, Liquid::Pepsi, Liquid::Vinegar]
        .iter()
        .copied()
        .map(Material::catalog)
        .collect();
    let mut accs = Vec::new();
    for container in [ContainerMaterial::Glass, ContainerMaterial::Plastic] {
        let opts = RunOptions {
            n_train: effort.n_train,
            n_test: effort.n_test,
            modify: Box::new(move |b| {
                b.beaker(Beaker::paper_default().with_material(container));
            }),
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!("  {container:<8}: accuracy {}", pct(result.accuracy()));
        accs.push(result.accuracy());
    }
    // Metal: the pipeline must *refuse* rather than misclassify.
    let opts = RunOptions {
        n_train: 2,
        n_test: 4,
        retry: crate::harness::RetryPolicy::attempts(1),
        modify: Box::new(|b| {
            b.beaker(Beaker::paper_default().with_material(ContainerMaterial::Metal));
        }),
        ..RunOptions::default()
    };
    let extractor = wimi_core::WiMi::new(opts.config.clone());
    let mut refused = 0;
    let mut total = 0;
    for trial in 0..6u64 {
        for m in &materials {
            total += 1;
            let (feat, _) = crate::harness::measure(&extractor, &m.spec, &opts, 777 + trial);
            if feat.is_none() {
                refused += 1;
            }
        }
    }
    println!("  Metal   : {refused}/{total} measurements refused (no penetration)");
    println!(
        "paper shape: glass ≈ plastic, metal breaks the system → {}",
        if (accs[0] - accs[1]).abs() < 0.25 && refused * 2 > total {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 21: per-antenna-pair accuracy.
pub fn fig21(effort: Effort) {
    heading("Fig. 21", "identification per antenna combination");
    let materials: Vec<Material> = [Liquid::PureWater, Liquid::Pepsi, Liquid::Vinegar]
        .iter()
        .copied()
        .map(Material::catalog)
        .collect();
    let mut accs = Vec::new();
    for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
        let config = WiMiConfig {
            pairs: PairSelection::Fixed(a, b),
            ..WiMiConfig::default()
        };
        let opts = RunOptions {
            config,
            n_train: effort.n_train,
            n_test: effort.n_test,
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        println!(
            "  antennas {}&{}: accuracy {}",
            a + 1,
            b + 1,
            pct(result.accuracy())
        );
        accs.push(result.accuracy());
    }
    // Joint (Best) selection for reference.
    let opts = RunOptions {
        n_train: effort.n_train,
        n_test: effort.n_test,
        ..RunOptions::default()
    };
    let joint = run_identification(&materials, &opts).accuracy();
    println!("  joint (all)  : accuracy {}", pct(joint));
    let spread = accs.iter().cloned().fold(f64::MIN, f64::max)
        - accs.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "paper shape: pairs differ slightly → {}",
        if spread > 0.0 {
            "REPRODUCED"
        } else {
            "identical pairs"
        }
    );
}
