//! `fleet` subcommand: runs the deterministic synthetic fleet through
//! `wimi-serve` and writes/gates its `wimi-serve/1` summary.
//!
//! This is the CLI surface CI drives: one run at `WIMI_THREADS=1` and one
//! at `WIMI_THREADS=4` must produce byte-identical summaries (`cmp`), and
//! `--check BENCH_PR9.json` gates the run's deterministic totals against
//! the committed `fleet_budgets` ceilings, fail-closed like the campaign
//! gate.

use wimi_metrics::Timeline;
use wimi_serve::{run_campaign_fleet, run_fleet, summary_json, validate_summary, FleetConfig};
use wimi_trace::analyze;

/// Deterministic gateable totals of a fleet report: service totals first,
/// then every fleet-wide counter, canonical order.
fn fleet_totals(report: &wimi_serve::FleetReport) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = vec![
        ("requests".to_owned(), report.requests),
        ("responses".to_owned(), report.responses),
        ("ok".to_owned(), report.ok),
        ("failed".to_owned(), report.failed),
        ("shed".to_owned(), report.shed),
        ("correct".to_owned(), report.correct),
        ("model_keys".to_owned(), report.model_keys as u64),
        ("queue_peak".to_owned(), report.queue_peak as u64),
    ];
    for &(name, value) in &report.counters {
        totals.push((name.to_owned(), value));
    }
    totals
}

/// Checks a fleet report's deterministic totals against the
/// `fleet_budgets` object of a committed bench summary. Fail-closed: a
/// missing or empty object, a non-integer budget, or a budget name that
/// matches no total is an error, not a skip.
pub fn check_fleet_budgets(
    bench_json: &str,
    report: &wimi_serve::FleetReport,
) -> Result<Vec<analyze::BudgetRow>, String> {
    let bench = wimi_obs::json::parse(bench_json).map_err(|e| format!("bench summary: {e}"))?;
    let Some(wimi_obs::json::Json::Obj(budgets)) = bench.get("fleet_budgets") else {
        return Err("bench summary has no \"fleet_budgets\" object".into());
    };
    if budgets.is_empty() {
        return Err("\"fleet_budgets\" is empty — nothing to gate on".into());
    }
    let totals = fleet_totals(report);
    let mut rows = Vec::new();
    for (name, value) in budgets {
        let budget = value
            .as_u64()
            .ok_or_else(|| format!("budget \"{name}\" must be a non-negative integer"))?;
        let actual = totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("budget \"{name}\" does not match any fleet total"))?;
        rows.push(analyze::BudgetRow {
            name: name.clone(),
            actual,
            budget,
            ok: actual <= budget,
        });
    }
    Ok(rows)
}

/// Checks a fleet timeline's windowed aggregates against the
/// `metrics_budgets` object of a committed bench summary: each budget
/// name must be a timeline series, gated on the series' windowed `max`.
/// Fail-closed: a missing or empty object, a non-integer budget, or a
/// name that is not a series is an error, not a skip.
pub fn check_metrics_budgets(
    bench_json: &str,
    timeline: &Timeline,
) -> Result<Vec<analyze::BudgetRow>, String> {
    let bench = wimi_obs::json::parse(bench_json).map_err(|e| format!("bench summary: {e}"))?;
    let Some(wimi_obs::json::Json::Obj(budgets)) = bench.get("metrics_budgets") else {
        return Err("bench summary has no \"metrics_budgets\" object".into());
    };
    if budgets.is_empty() {
        return Err("\"metrics_budgets\" is empty — nothing to gate on".into());
    }
    let mut rows = Vec::new();
    for (name, value) in budgets {
        let budget = value
            .as_u64()
            .ok_or_else(|| format!("budget \"{name}\" must be a non-negative integer"))?;
        let actual = timeline
            .aggregate(name)
            .map(|s| s.max)
            .ok_or_else(|| format!("budget \"{name}\" is not a timeline series"))?;
        rows.push(analyze::BudgetRow {
            name: name.clone(),
            actual,
            budget,
            ok: actual <= budget,
        });
    }
    Ok(rows)
}

/// `fleet [--sessions N] [--measurements M] [--campaign PATH]
/// [--fleet-out PATH] [--metrics-out PATH] [--slo POLICY] [--check BENCH]`:
/// runs the synthetic fleet (or one session per cell of a campaign file),
/// prints totals, writes the summary and the `wimi-metrics/1` timeline,
/// gates the declared SLOs, and optionally gates budget ceilings. Exit 1
/// on SLO breaches, budget violations or an invalid artifact, exit 2 on
/// I/O errors.
pub fn fleet_run(
    sessions: Option<usize>,
    measurements: Option<u64>,
    campaign_path: Option<&str>,
    out: Option<&str>,
    metrics_out: Option<&str>,
    slo: Option<&str>,
    check: Option<&str>,
) {
    let mut cfg = FleetConfig::default();
    if let Some(n) = sessions {
        cfg.sessions = n;
    }
    if let Some(m) = measurements {
        cfg.measurements = m;
    }

    let report = match campaign_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fleet: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let campaign = match wimi_campaign::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            };
            run_campaign_fleet(&campaign, &cfg)
        }
        None => run_fleet(&cfg),
    };

    let summary = summary_json(&report);
    // The renderer and validator are independent implementations; running
    // the validator here means a malformed summary can never reach CI's
    // byte-compare silently.
    if let Err(e) = validate_summary(&summary) {
        eprintln!("fleet: summary failed validation: {e}");
        std::process::exit(1);
    }

    eprintln!(
        "fleet: {} sessions x {} measurements: {} ok / {} failed / {} shed, {} correct, {} model keys",
        report.sessions,
        report.measurements,
        report.ok,
        report.failed,
        report.shed,
        report.correct,
        report.model_keys
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &summary) {
                eprintln!("fleet: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("fleet: summary written to {path}");
        }
        None => print!("{summary}"),
    }

    // The timeline artifact, self-validated like the summary: a render
    // the validator rejects must never reach CI's byte-compare.
    let timeline_text =
        wimi_metrics::render(&report.timeline, Some(&report.engine_snapshot.to_json()));
    if let Err(e) = wimi_metrics::parse_and_validate(&timeline_text) {
        eprintln!("fleet: timeline failed validation: {e}");
        std::process::exit(1);
    }
    if let Some(path) = metrics_out {
        if let Err(e) = std::fs::write(path, &timeline_text) {
            eprintln!("fleet: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("fleet: timeline written to {path}");
    }

    // SLO gate: every declared objective is evaluated; all breaches are
    // reported before the nonzero exit so the first breaching tick of
    // each rule is visible in one run.
    if let Some(policy_path) = slo {
        let policy_text = match std::fs::read_to_string(policy_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet: cannot read {policy_path}: {e}");
                std::process::exit(2);
            }
        };
        let policy = match wimi_metrics::parse_policy(&policy_text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fleet: {policy_path}: {e}");
                std::process::exit(1);
            }
        };
        let rows: Vec<wimi_metrics::SessionRow> =
            report.per_session.iter().map(|s| s.metrics_row()).collect();
        let breaches = wimi_metrics::slo::evaluate(&policy, &report.timeline, &rows);
        if breaches.is_empty() {
            eprintln!("fleet: SLO check OK against {policy_path}");
        } else {
            for b in &breaches {
                eprintln!("fleet: SLO breach [{}]: {}", b.rule, b.message);
            }
            std::process::exit(1);
        }
    }

    if let Some(bench_path) = check {
        let bench = match std::fs::read_to_string(bench_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet: cannot read {bench_path}: {e}");
                std::process::exit(2);
            }
        };
        match check_fleet_budgets(&bench, &report) {
            Ok(rows) => {
                print!("{}", analyze::budget_table(&rows));
                if rows.iter().any(|r| !r.ok) {
                    eprintln!("fleet: budget check FAILED against {bench_path}");
                    std::process::exit(1);
                }
                eprintln!("fleet: budget check OK against {bench_path}");
            }
            Err(e) => {
                eprintln!("fleet: {e}");
                std::process::exit(1);
            }
        }
        // A bench summary that carries telemetry ceilings gates them
        // too (older summaries without the object stay valid).
        if wimi_obs::json::parse(&bench)
            .ok()
            .is_some_and(|b| b.get("metrics_budgets").is_some())
        {
            match check_metrics_budgets(&bench, &report.timeline) {
                Ok(rows) => {
                    print!("{}", analyze::budget_table(&rows));
                    if rows.iter().any(|r| !r.ok) {
                        eprintln!("fleet: metrics budget check FAILED against {bench_path}");
                        std::process::exit(1);
                    }
                    eprintln!("fleet: metrics budget check OK against {bench_path}");
                }
                Err(e) => {
                    eprintln!("fleet: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> wimi_serve::FleetReport {
        run_fleet(&FleetConfig {
            sessions: 4,
            measurements: 2,
            packets: 8,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn budgets_gate_fleet_totals() {
        let report = tiny_report();
        let bench = format!(
            "{{\"fleet_budgets\": {{\"requests\": {}, \"failed\": {}, \"captures_taken\": 100000}}}}",
            report.requests, report.failed
        );
        let rows = check_fleet_budgets(&bench, &report)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().all(|r| r.ok));

        let tight = "{\"fleet_budgets\": {\"requests\": 0}}";
        let rows = check_fleet_budgets(tight, &report)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().any(|r| !r.ok), "zero ceiling must trip");
    }

    #[test]
    fn metrics_budgets_gate_windowed_maxima() {
        let report = tiny_report();
        let peak = report
            .timeline
            .aggregate("queue_peak")
            .map(|s| s.max)
            .unwrap_or(0);
        let bench = format!(
            "{{\"metrics_budgets\": {{\"queue_peak\": {peak}, \"shed\": 0, \"packets_processed\": 99999}}}}"
        );
        let rows = check_metrics_budgets(&bench, &report.timeline)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().all(|r| r.ok), "{rows:?}");

        let tight = "{\"metrics_budgets\": {\"requests\": 0}}";
        let rows = check_metrics_budgets(tight, &report.timeline)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().any(|r| !r.ok), "zero ceiling must trip");

        // Fail-closed: no object, empty object, unknown series.
        assert!(check_metrics_budgets("{}", &report.timeline).is_err());
        assert!(check_metrics_budgets("{\"metrics_budgets\": {}}", &report.timeline).is_err());
        assert!(check_metrics_budgets(
            "{\"metrics_budgets\": {\"no_such_series\": 1}}",
            &report.timeline
        )
        .is_err());
    }

    #[test]
    fn budget_check_fails_closed() {
        let report = tiny_report();
        assert!(check_fleet_budgets("{}", &report).is_err());
        assert!(check_fleet_budgets("{\"fleet_budgets\": {}}", &report).is_err());
        assert!(
            check_fleet_budgets("{\"fleet_budgets\": {\"no_such_total\": 1}}", &report).is_err()
        );
        assert!(
            check_fleet_budgets("{\"fleet_budgets\": {\"requests\": -3}}", &report).is_err(),
            "negative budget must be rejected"
        );
    }
}
