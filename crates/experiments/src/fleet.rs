//! `fleet` subcommand: runs the deterministic synthetic fleet through
//! `wimi-serve` and writes/gates its `wimi-serve/1` summary.
//!
//! This is the CLI surface CI drives: one run at `WIMI_THREADS=1` and one
//! at `WIMI_THREADS=4` must produce byte-identical summaries (`cmp`), and
//! `--check BENCH_PR9.json` gates the run's deterministic totals against
//! the committed `fleet_budgets` ceilings, fail-closed like the campaign
//! gate.

use wimi_serve::{run_campaign_fleet, run_fleet, summary_json, validate_summary, FleetConfig};
use wimi_trace::analyze;

/// Deterministic gateable totals of a fleet report: service totals first,
/// then every fleet-wide counter, canonical order.
fn fleet_totals(report: &wimi_serve::FleetReport) -> Vec<(String, u64)> {
    let mut totals: Vec<(String, u64)> = vec![
        ("requests".to_owned(), report.requests),
        ("responses".to_owned(), report.responses),
        ("ok".to_owned(), report.ok),
        ("failed".to_owned(), report.failed),
        ("shed".to_owned(), report.shed),
        ("correct".to_owned(), report.correct),
        ("model_keys".to_owned(), report.model_keys as u64),
        ("queue_peak".to_owned(), report.queue_peak as u64),
    ];
    for &(name, value) in &report.counters {
        totals.push((name.to_owned(), value));
    }
    totals
}

/// Checks a fleet report's deterministic totals against the
/// `fleet_budgets` object of a committed bench summary. Fail-closed: a
/// missing or empty object, a non-integer budget, or a budget name that
/// matches no total is an error, not a skip.
pub fn check_fleet_budgets(
    bench_json: &str,
    report: &wimi_serve::FleetReport,
) -> Result<Vec<analyze::BudgetRow>, String> {
    let bench = wimi_obs::json::parse(bench_json).map_err(|e| format!("bench summary: {e}"))?;
    let Some(wimi_obs::json::Json::Obj(budgets)) = bench.get("fleet_budgets") else {
        return Err("bench summary has no \"fleet_budgets\" object".into());
    };
    if budgets.is_empty() {
        return Err("\"fleet_budgets\" is empty — nothing to gate on".into());
    }
    let totals = fleet_totals(report);
    let mut rows = Vec::new();
    for (name, value) in budgets {
        let budget = value
            .as_u64()
            .ok_or_else(|| format!("budget \"{name}\" must be a non-negative integer"))?;
        let actual = totals
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("budget \"{name}\" does not match any fleet total"))?;
        rows.push(analyze::BudgetRow {
            name: name.clone(),
            actual,
            budget,
            ok: actual <= budget,
        });
    }
    Ok(rows)
}

/// `fleet [--sessions N] [--measurements M] [--campaign PATH]
/// [--fleet-out PATH] [--check BENCH]`: runs the synthetic fleet (or one
/// session per cell of a campaign file), prints totals, writes the
/// summary, and optionally gates it. Exit 1 on budget violations or an
/// invalid summary, exit 2 on I/O errors.
pub fn fleet_run(
    sessions: Option<usize>,
    measurements: Option<u64>,
    campaign_path: Option<&str>,
    out: Option<&str>,
    check: Option<&str>,
) {
    let mut cfg = FleetConfig::default();
    if let Some(n) = sessions {
        cfg.sessions = n;
    }
    if let Some(m) = measurements {
        cfg.measurements = m;
    }

    let report = match campaign_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("fleet: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            let campaign = match wimi_campaign::parse(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    std::process::exit(1);
                }
            };
            run_campaign_fleet(&campaign, &cfg)
        }
        None => run_fleet(&cfg),
    };

    let summary = summary_json(&report);
    // The renderer and validator are independent implementations; running
    // the validator here means a malformed summary can never reach CI's
    // byte-compare silently.
    if let Err(e) = validate_summary(&summary) {
        eprintln!("fleet: summary failed validation: {e}");
        std::process::exit(1);
    }

    eprintln!(
        "fleet: {} sessions x {} measurements: {} ok / {} failed / {} shed, {} correct, {} model keys",
        report.sessions,
        report.measurements,
        report.ok,
        report.failed,
        report.shed,
        report.correct,
        report.model_keys
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &summary) {
                eprintln!("fleet: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("fleet: summary written to {path}");
        }
        None => print!("{summary}"),
    }

    if let Some(bench_path) = check {
        let bench = match std::fs::read_to_string(bench_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("fleet: cannot read {bench_path}: {e}");
                std::process::exit(2);
            }
        };
        match check_fleet_budgets(&bench, &report) {
            Ok(rows) => {
                print!("{}", analyze::budget_table(&rows));
                if rows.iter().any(|r| !r.ok) {
                    eprintln!("fleet: budget check FAILED against {bench_path}");
                    std::process::exit(1);
                }
                eprintln!("fleet: budget check OK against {bench_path}");
            }
            Err(e) => {
                eprintln!("fleet: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> wimi_serve::FleetReport {
        run_fleet(&FleetConfig {
            sessions: 4,
            measurements: 2,
            packets: 8,
            ..FleetConfig::default()
        })
    }

    #[test]
    fn budgets_gate_fleet_totals() {
        let report = tiny_report();
        let bench = format!(
            "{{\"fleet_budgets\": {{\"requests\": {}, \"failed\": {}, \"captures_taken\": 100000}}}}",
            report.requests, report.failed
        );
        let rows = check_fleet_budgets(&bench, &report)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().all(|r| r.ok));

        let tight = "{\"fleet_budgets\": {\"requests\": 0}}";
        let rows = check_fleet_budgets(tight, &report)
            .unwrap_or_else(|e| panic!("budgets must parse: {e}"));
        assert!(rows.iter().any(|r| !r.ok), "zero ceiling must trip");
    }

    #[test]
    fn budget_check_fails_closed() {
        let report = tiny_report();
        assert!(check_fleet_budgets("{}", &report).is_err());
        assert!(check_fleet_budgets("{\"fleet_budgets\": {}}", &report).is_err());
        assert!(
            check_fleet_budgets("{\"fleet_budgets\": {\"no_such_total\": 1}}", &report).is_err()
        );
        assert!(
            check_fleet_budgets("{\"fleet_budgets\": {\"requests\": -3}}", &report).is_err(),
            "negative budget must be rejected"
        );
    }
}
