//! Shared experiment harness: measurement collection, training/testing,
//! and per-figure reporting.

use rand::{Rng, SeedableRng};
use std::sync::Arc;
use wimi_core::{MaterialFeature, WiMi, WiMiConfig};
use wimi_ml::dataset::Dataset;
use wimi_ml::metrics::ConfusionMatrix;
use wimi_obs::{CounterId, Recorder};
use wimi_phy::channel::Environment;
use wimi_phy::csi::{CsiCapture, CsiSource};
use wimi_phy::fault::FaultPlan;
use wimi_phy::material::{Liquid, SaltwaterConcentration, LIQUIDS};
use wimi_phy::scenario::{LiquidSpec, Scenario, ScenarioBuilder, Simulator};
use wimi_phy::units::Meters;
use wimi_trace::{task_scope, TaskKey, TraceEvent, TraceSink};

/// A material under test: display name plus its dielectric spec.
#[derive(Debug, Clone)]
pub struct Material {
    /// Display name (and class label).
    pub name: String,
    /// Dielectric specification.
    pub spec: LiquidSpec,
}

impl Material {
    /// Wraps a catalog liquid.
    pub fn catalog(liquid: Liquid) -> Self {
        Material {
            name: liquid.name().to_owned(),
            spec: liquid.into(),
        }
    }

    /// Wraps a saltwater concentration under a short label.
    pub fn saltwater(label: &str, c: SaltwaterConcentration) -> Self {
        Material {
            name: label.to_owned(),
            spec: LiquidSpec::saltwater(c),
        }
    }
}

/// The paper's ten-liquid set (Fig. 15).
pub fn paper_liquids() -> Vec<Material> {
    LIQUIDS.iter().copied().map(Material::catalog).collect()
}

/// Bounded retry policy for the re-seat-and-retry measurement protocol.
///
/// The policy moved to `wimi-serve` (sessions need it per link); the
/// harness re-exports it so experiment call sites keep their paths.
pub use wimi_serve::retry::RetryPolicy;

/// Options of one identification run.
pub struct RunOptions {
    /// Deployment environment.
    pub environment: Environment,
    /// Packets per capture (the paper's default is 20).
    pub packets: usize,
    /// Training measurements per material.
    pub n_train: usize,
    /// Test measurements per material.
    pub n_test: usize,
    /// Base RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Pipeline configuration.
    pub config: WiMiConfig,
    /// Extra scenario customisation applied after the defaults. `Send +
    /// Sync` so measurements can fan out across worker threads.
    pub modify: Box<dyn Fn(&mut ScenarioBuilder) + Send + Sync>,
    /// Retry policy for the re-seat-and-retry protocol (the operator
    /// re-seats the beaker when the pipeline flags a bad measurement).
    pub retry: RetryPolicy,
    /// Fault plan injected into every capture (`None` = healthy
    /// deployment). Each measurement derives an independent fault stream
    /// from the plan's seed and its own, so runs stay deterministic and
    /// thread-count invariant.
    pub fault: Option<FaultPlan>,
    /// Optional observability recorder shared by the simulator, the
    /// pipeline, and the harness itself (`None` = no recording). All
    /// recorded aggregates are order-independent, so runs stay
    /// thread-count invariant with a recorder attached.
    pub recorder: Option<Arc<Recorder>>,
    /// Optional flight-recorder trace sink shared the same way (`None` =
    /// no tracing). Each measurement's events are scoped to a
    /// [`wimi_trace::TaskKey`] derived from its seed, so rendered traces
    /// are byte-identical for any `WIMI_THREADS` setting.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            environment: Environment::Lab,
            packets: 20,
            n_train: 20,
            n_test: 20,
            seed: 0xACC0,
            config: WiMiConfig::default(),
            modify: Box::new(|_| {}),
            retry: RetryPolicy::default(),
            fault: None,
            recorder: None,
            trace: None,
        }
    }
}

/// Per-measurement accounting from [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasureStats {
    /// Attempts the pipeline rejected before success (or giving up).
    pub rejected: usize,
    /// Whether the successful measurement needed salvage (dropped
    /// packets or antennas).
    pub salvaged: bool,
    /// Packets spent across all attempts (baseline + target).
    pub packets_spent: usize,
}

/// Result of an identification run.
pub struct RunResult {
    /// Pooled test confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Trials (train + test) whose every measurement attempt failed.
    pub dropped_trials: usize,
    /// Total measurement attempts that were rejected by the pipeline.
    pub rejected_measurements: usize,
    /// Successful measurements that needed salvage (dropped packets or
    /// antennas) on the way.
    pub salvaged_measurements: usize,
}

impl RunResult {
    /// Overall test accuracy.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }
}

/// One baseline/target capture pair at a given placement.
pub fn capture_pair(
    spec: &LiquidSpec,
    environment: Environment,
    packets: usize,
    seed: u64,
    offset_cm: f64,
    modify: &(dyn Fn(&mut ScenarioBuilder) + Sync),
) -> (CsiCapture, CsiCapture) {
    capture_pair_faulted(
        Some(spec),
        environment,
        packets,
        seed,
        offset_cm,
        modify,
        None,
        None,
        None,
    )
}

/// Like [`capture_pair`], with an optional fault plan applied to both
/// captures and an optional observability recorder attached to the
/// simulator. The plan is reseeded from its own seed XOR the capture seed,
/// so each measurement draws an independent, reproducible fault stream.
/// `spec` is `None` when the target was removed (a campaign `target
/// removed` window): the target capture then sees the empty scenario, the
/// same view as the baseline.
#[allow(clippy::too_many_arguments)]
pub fn capture_pair_faulted(
    spec: Option<&LiquidSpec>,
    environment: Environment,
    packets: usize,
    seed: u64,
    offset_cm: f64,
    modify: &(dyn Fn(&mut ScenarioBuilder) + Sync),
    fault: Option<&FaultPlan>,
    recorder: Option<&Arc<Recorder>>,
    trace: Option<&Arc<TraceSink>>,
) -> (CsiCapture, CsiCapture) {
    let mut builder = Scenario::builder();
    builder.environment(environment);
    builder.target_offset(Meters::from_cm(offset_cm));
    modify(&mut builder);
    let mut sim = Simulator::new(builder.build(), seed);
    if let Some(plan) = fault {
        sim.set_fault_plan(Some(plan.clone().with_seed(plan.seed() ^ seed)));
    }
    sim.set_recorder(recorder.cloned());
    sim.set_trace(trace.cloned());
    let baseline = sim.capture(packets);
    sim.set_liquid(spec.cloned());
    let target = sim.capture(packets);
    (baseline, target)
}

/// The capture seed of a retry attempt (see `wimi_serve::retry`).
pub use wimi_serve::retry::attempt_capture_seed;

/// Measures one material with the re-seat-and-retry protocol. Returns the
/// feature and the number of rejected attempts.
///
/// Placement randomness (the operator never re-seats the beaker in
/// exactly the same spot) is drawn from an RNG derived from the
/// measurement `seed`, not from a stream shared with other measurements.
/// That makes every measurement a pure function of its seed, so the
/// harness can run them on any thread in any order. (Earlier revisions
/// drew offsets from one sequential stream; their runs differ
/// numerically but not statistically.)
pub fn measure(
    extractor: &WiMi,
    spec: &LiquidSpec,
    opts: &RunOptions,
    seed: u64,
) -> (Option<MaterialFeature>, MeasureStats) {
    measure_target(extractor, Some(spec), opts, seed)
}

/// Like [`measure`], with an optional target: `None` measures the empty
/// scenario (campaign `target removed` windows), where the pipeline sees
/// a baseline/target pair that differs only by noise.
pub fn measure_target(
    extractor: &WiMi,
    spec: Option<&LiquidSpec>,
    opts: &RunOptions,
    seed: u64,
) -> (Option<MaterialFeature>, MeasureStats) {
    let mut placement = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut stats = MeasureStats::default();
    let rec = opts.recorder.as_ref();
    let trace = opts.trace.as_ref();
    // All of this measurement's trace events — captures, screening,
    // extraction, retries — land in one task keyed by the seed, the same
    // identity the deterministic fan-out uses, so the rendered trace does
    // not depend on which worker thread ran it.
    let _task = trace.map(|_| task_scope(TaskKey::measurement(seed)));
    // `planned` is the nominal-cost attempt cap traces report as `max`;
    // the loop itself charges the budget with what each attempt *kept*
    // (post-screening), so salvage savings fund further attempts instead
    // of being billed as if every capture ran at full length.
    let planned = opts.retry.allowed_attempts(opts.packets);
    let mut attempts = 0usize;
    while opts
        .retry
        .allows_another(attempts, stats.packets_spent, opts.packets)
    {
        if let Some(t) = trace {
            t.emit(TraceEvent::Attempt {
                attempt: attempts as u32 + 1,
                max: planned as u32,
            });
        }
        let offset_cm = 1.0 + placement.gen_range(-0.5..0.5);
        let (base, tar) = capture_pair_faulted(
            spec,
            opts.environment,
            opts.packets,
            attempt_capture_seed(seed, attempts),
            offset_cm,
            opts.modify.as_ref(),
            opts.fault.as_ref(),
            rec,
            trace,
        );
        let m = extractor.measure(&base, &tar);
        stats.packets_spent += m.quality.baseline_packets_kept + m.quality.target_packets_kept;
        attempts += 1;
        match m.feature {
            Ok(f) => {
                stats.salvaged = m.quality.salvaged();
                if let Some(rec) = rec {
                    rec.add(CounterId::Retries, stats.rejected as u64);
                    rec.record_attempts(attempts as u64);
                }
                return (Some(f), stats);
            }
            Err(_) => stats.rejected += 1,
        }
    }
    if let Some(rec) = rec {
        rec.add(CounterId::Retries, stats.rejected.saturating_sub(1) as u64);
        rec.record_attempts(stats.rejected as u64);
    }
    if let Some(t) = trace {
        t.emit(TraceEvent::RetriesExhausted {
            attempts: attempts as u32,
        });
        t.mark_failure();
    }
    (None, stats)
}

/// Runs a full train/test identification experiment.
///
/// Every (trial × material) measurement is independent — its seed is a
/// pure function of `opts.seed`, the trial, and the material label — so
/// both phases fan out over [`wimi_core::par`] worker threads
/// (`WIMI_THREADS`). Results are folded back in trial-major order, which
/// makes the confusion matrix bitwise identical for any thread count.
pub fn run_identification(materials: &[Material], opts: &RunOptions) -> RunResult {
    let mut extractor = WiMi::new(opts.config.clone());
    extractor.set_recorder(opts.recorder.clone());
    extractor.set_trace(opts.trace.clone());
    let class_names: Vec<String> = materials.iter().map(|m| m.name.clone()).collect();

    let mut dropped = 0usize;
    let mut rejected = 0usize;
    let mut salvaged = 0usize;

    let jobs = |base: u64, trials: usize, stride: u64| -> Vec<(usize, u64)> {
        let mut v = Vec::with_capacity(trials * materials.len());
        for trial in 0..trials {
            for label in 0..materials.len() {
                v.push((label, base + trial as u64 * stride + label as u64));
            }
        }
        v
    };

    // Training set.
    let train_jobs = jobs(opts.seed + 1_000, opts.n_train, 131);
    let measured = wimi_core::par::map(&train_jobs, |_, &(label, seed)| {
        (
            label,
            measure(&extractor, &materials[label].spec, opts, seed),
        )
    });
    let mut train = Dataset::new(class_names.clone());
    for (label, (feat, stats)) in measured {
        rejected += stats.rejected;
        salvaged += stats.salvaged as usize;
        match feat {
            Some(f) => train.push(f.as_vector(), label),
            None => dropped += 1,
        }
    }

    let mut wimi = WiMi::new(opts.config.clone());
    wimi.set_recorder(opts.recorder.clone());
    wimi.set_trace(opts.trace.clone());
    wimi.train_on_dataset(&train);

    // Test set.
    let test_jobs = jobs(opts.seed + 900_000, opts.n_test, 137);
    let measured = wimi_core::par::map(&test_jobs, |_, &(label, seed)| {
        (
            label,
            measure(&extractor, &materials[label].spec, opts, seed),
        )
    });
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for (label, (feat, stats)) in measured {
        rejected += stats.rejected;
        salvaged += stats.salvaged as usize;
        match feat {
            Some(f) => {
                let p = wimi.classify_feature(&f).expect("trained");
                truth.push(label);
                pred.push(p);
            }
            None => dropped += 1,
        }
    }

    if let Some(rec) = &opts.recorder {
        rec.add(CounterId::TrialsDropped, dropped as u64);
    }

    RunResult {
        confusion: ConfusionMatrix::from_predictions(&truth, &pred, &class_names),
        dropped_trials: dropped,
        rejected_measurements: rejected,
        salvaged_measurements: salvaged,
    }
}

/// Formats a percentage for report rows.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a report header for one figure.
pub fn heading(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title}");
    println!("{}", "-".repeat(64));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_liquids_has_ten() {
        let mats = paper_liquids();
        assert_eq!(mats.len(), 10);
        assert_eq!(mats[0].name, "Vinegar");
    }

    #[test]
    fn capture_pair_produces_consistent_captures() {
        let mat = Material::catalog(Liquid::Milk);
        let (base, tar) = capture_pair(&mat.spec, Environment::Lab, 5, 1, 1.0, &|_| {});
        assert_eq!(base.len(), 5);
        assert_eq!(tar.len(), 5);
        assert_eq!(base.n_antennas(), Scenario::builder().build().n_antennas());
    }

    #[test]
    fn attempt_capture_seeds_are_pairwise_distinct() {
        // Within one measurement, every retry attempt must get its own
        // capture seed — and therefore its own reseeded fault stream.
        for seed in [0u64, 1, 0xACC0, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            let seeds: Vec<u64> = (0..16).map(|a| attempt_capture_seed(seed, a)).collect();
            let mut sorted = seeds.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), seeds.len(), "collision under seed {seed}");
        }
    }

    #[test]
    fn retry_attempts_draw_distinct_fault_streams() {
        // Regression pin: two attempts of one measurement under an active
        // FaultPlan must observe different captures (distinct sim + fault
        // randomness), while re-running the same attempt reproduces its
        // capture exactly.
        let spec: LiquidSpec = Liquid::Milk.into();
        let plan = FaultPlan::hostile(0xFA17);
        let capture = |attempt: usize| {
            capture_pair_faulted(
                Some(&spec),
                Environment::Lab,
                6,
                attempt_capture_seed(4242, attempt),
                1.0,
                &|_| {},
                Some(&plan),
                None,
                None,
            )
        };
        let (base0, tar0) = capture(0);
        let (base0_again, tar0_again) = capture(0);
        assert_eq!(base0, base0_again, "same attempt must reproduce exactly");
        assert_eq!(tar0, tar0_again, "same attempt must reproduce exactly");
        let (base1, tar1) = capture(1);
        assert_ne!(base0, base1, "attempts must not share a fault stream");
        assert_ne!(tar0, tar1, "attempts must not share a fault stream");
    }

    #[test]
    fn run_identification_is_deterministic() {
        let materials = vec![
            Material::catalog(Liquid::PureWater),
            Material::catalog(Liquid::Oil),
        ];
        let opts = RunOptions {
            n_train: 4,
            n_test: 3,
            packets: 10,
            ..RunOptions::default()
        };
        let a = run_identification(&materials, &opts);
        let b = run_identification(&materials, &opts);
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.dropped_trials, b.dropped_trials);
        assert_eq!(a.rejected_measurements, b.rejected_measurements);
    }

    #[test]
    fn run_identification_is_thread_count_invariant() {
        // Seeds are drawn per measurement (not from a shared stream) and
        // results fold back in trial-major order, so 1 worker and 4
        // workers must produce the same confusion matrix bit for bit.
        let materials = vec![
            Material::catalog(Liquid::PureWater),
            Material::catalog(Liquid::Honey),
        ];
        let opts = RunOptions {
            n_train: 4,
            n_test: 3,
            packets: 10,
            ..RunOptions::default()
        };
        wimi_core::par::set_thread_override(Some(1));
        let serial = run_identification(&materials, &opts);
        wimi_core::par::set_thread_override(Some(4));
        let parallel = run_identification(&materials, &opts);
        wimi_core::par::set_thread_override(None);
        assert_eq!(serial.confusion, parallel.confusion);
        assert_eq!(serial.dropped_trials, parallel.dropped_trials);
        assert_eq!(serial.rejected_measurements, parallel.rejected_measurements);
    }

    #[test]
    fn small_run_identification_works() {
        let materials = vec![
            Material::catalog(Liquid::PureWater),
            Material::catalog(Liquid::Honey),
        ];
        let opts = RunOptions {
            n_train: 6,
            n_test: 4,
            ..RunOptions::default()
        };
        let result = run_identification(&materials, &opts);
        // Water vs honey is an easy pair; expect high accuracy.
        assert!(result.accuracy() > 0.8, "accuracy = {}", result.accuracy());
    }
}
