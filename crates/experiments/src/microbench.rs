//! Microbenchmark figures: the CSI pre-processing evidence
//! (paper Figs. 2, 3, 6, 7, 8 and 12).

use crate::harness::{capture_pair, heading};
use wimi_core::amplitude::{
    per_antenna_amplitude_variance, AmplitudeConfig, AmplitudeRatioProfile,
};
use wimi_core::phase::{phase_difference_spread_deg, raw_phase_spread, PhaseDifferenceProfile};
use wimi_core::subcarrier::rank_subcarriers;
use wimi_dsp::filters::{butterworth_filtfilt, median_filter, slide_filter};
use wimi_dsp::stats::{mean, rms};
use wimi_dsp::wavelet::correlation_denoise;
use wimi_phy::channel::Environment;
use wimi_phy::material::Liquid;
use wimi_phy::scenario::LiquidSpec;

fn milk() -> LiquidSpec {
    Liquid::Milk.into()
}

/// Fig. 2: raw CSI phase is uniformly random across packets; the
/// cross-antenna phase difference concentrates.
pub fn fig2() {
    heading("Fig. 2", "raw CSI phase vs cross-antenna phase difference");
    let (_, tar) = capture_pair(&milk(), Environment::Lab, 200, 2, 1.0, &|_| {});
    let raw = raw_phase_spread(&tar, 0, 15);
    let diff = phase_difference_spread_deg(&tar, 0, 1, 15);
    println!(
        "raw phase resultant length R = {:.3} (1 = aligned, 0 = uniform)",
        raw.resultant
    );
    println!(
        "raw phase angular spread     = {:.0}°",
        raw.spread_deg.min(360.0)
    );
    println!("phase-difference spread      = {:.1}°  (paper: ≈18°)", diff);
    println!(
        "paper shape: raw uniform over 0..2π, difference clusters → {}",
        if raw.resultant < 0.3 && diff < 45.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 3: raw amplitude readings contain outliers and impulse noise.
pub fn fig3() {
    heading("Fig. 3", "raw CSI amplitude outliers and impulse noise");
    let (_, tar) = capture_pair(&milk(), Environment::Lab, 400, 3, 1.0, &|_| {});
    let series = tar.amplitude_series(0, 15);
    let m = mean(&series);
    let sd = wimi_dsp::stats::std_dev(&series);
    let outliers = series.iter().filter(|&&a| (a - m).abs() > 3.0 * sd).count();
    let impulses = series
        .iter()
        .filter(|&&a| (a - m).abs() > 1.5 * sd && (a - m).abs() <= 3.0 * sd)
        .count();
    println!(
        "packets: {}   mean |H| = {m:.3}   std = {sd:.3}",
        series.len()
    );
    println!("samples beyond 3σ (outliers):      {outliers}");
    println!("samples in 1.5σ..3σ (impulse-ish): {impulses}");
    println!(
        "paper shape: amplitude series visibly corrupted → {}",
        if outliers + impulses > 0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 6: per-subcarrier phase-difference variance is frequency-selective
/// and a few "good" subcarriers stand out.
pub fn fig6() {
    heading("Fig. 6", "phase-difference variance per subcarrier");
    let (base, tar) = capture_pair(&milk(), Environment::Lab, 200, 6, 1.0, &|_| {});
    let pb = PhaseDifferenceProfile::compute(&base, 0, 1);
    let pt = PhaseDifferenceProfile::compute(&tar, 0, 1);
    let ranked = rank_subcarriers(&pb, &pt);
    println!("subcarrier : combined variance (rad²)");
    let mut by_index = ranked.clone();
    by_index.sort_by_key(|&(k, _)| k);
    for (k, v) in &by_index {
        let marker = if ranked[..4].iter().any(|&(g, _)| g == *k) {
            "  <-- good"
        } else {
            ""
        };
        println!("  {k:>2}       : {v:.5}{marker}");
    }
    let best: Vec<usize> = ranked[..4].iter().map(|&(k, _)| k).collect();
    let worst = ranked.last().expect("subcarriers").1;
    let spread = worst / ranked[0].1.max(1e-12);
    println!("good subcarriers (P = 4): {best:?}");
    println!(
        "variance spread worst/best = {spread:.1}x → {}",
        if spread > 2.0 {
            "REPRODUCED (frequency-selective)"
        } else {
            "weak selectivity"
        }
    );
}

/// Fig. 7: the wavelet-correlation denoiser vs median/slide/Butterworth.
pub fn fig7() {
    heading("Fig. 7", "amplitude denoising method comparison");
    // An impulse-corrupted amplitude series like the paper's example.
    let n = 256usize;
    let clean: Vec<f64> = (0..n)
        .map(|i| 1.0 + 0.25 * (2.0 * std::f64::consts::PI * 2.0 * i as f64 / n as f64).sin())
        .collect();
    let mut noisy = clean.clone();
    let mut state: u64 = 0xF1E57;
    let mut rand01 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as f64 / u64::MAX as f64
    };
    for v in noisy.iter_mut() {
        *v += 0.03 * (rand01() - 0.5);
    }
    // Impulse *bursts* (2–3 consecutive packets), as interference hits
    // usually span several CSI samples. Short bursts defeat windowed
    // median/mean filters but remain scale-uncorrelated for the wavelet
    // method.
    for _ in 0..8 {
        let idx = (rand01() * n as f64) as usize % (n - 3);
        let sign = if rand01() > 0.5 { 0.5 } else { -0.5 };
        let len = 2 + (rand01() * 2.0) as usize;
        for j in 0..len {
            noisy[idx + j] += sign * (1.0 - 0.2 * j as f64);
        }
    }

    let err = |xs: &[f64]| -> f64 {
        let d: Vec<f64> = xs.iter().zip(&clean).map(|(a, b)| a - b).collect();
        rms(&d)
    };
    let results = [
        ("raw (no filtering)", err(&noisy)),
        ("median filter", err(&median_filter(&noisy, 5))),
        ("slide filter", err(&slide_filter(&noisy, 5))),
        (
            "Butterworth filter",
            err(&butterworth_filtfilt(&noisy, 0.25)),
        ),
        (
            "proposed (wavelet corr.)",
            err(&correlation_denoise(&noisy)),
        ),
    ];
    println!("method                     : residual RMSE vs clean signal");
    for (name, e) in &results {
        println!("  {name:<24} : {e:.4}");
    }
    let proposed = results[4].1;
    let best_classic = results[1..4]
        .iter()
        .map(|r| r.1)
        .fold(f64::INFINITY, f64::min);
    println!(
        "paper shape: proposed best → {}",
        if proposed <= best_classic {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 8: the cross-antenna amplitude ratio is more stable than either
/// antenna's amplitude.
pub fn fig8() {
    heading("Fig. 8", "amplitude variance: single antennas vs ratio");
    // Measured on the baseline capture: the figure's point is that the
    // common AGC/power wobble cancels in the cross-antenna ratio.
    let (tar, _) = capture_pair(&milk(), Environment::Lab, 200, 8, 1.0, &|_| {});
    let v1 = per_antenna_amplitude_variance(&tar, 0);
    let v2 = per_antenna_amplitude_variance(&tar, 1);
    let ratio = AmplitudeRatioProfile::compute(&tar, 0, 1, &AmplitudeConfig::raw());
    // Normalised (CV²) so different mean levels compare fairly.
    let cv = |var: &[f64], means: &[f64]| -> f64 {
        mean(
            &var.iter()
                .zip(means)
                .map(|(v, m)| v / (m * m))
                .collect::<Vec<_>>(),
        )
    };
    let m1: Vec<f64> = (0..30).map(|k| mean(&tar.amplitude_series(0, k))).collect();
    let m2: Vec<f64> = (0..30).map(|k| mean(&tar.amplitude_series(1, k))).collect();
    let cv1 = cv(&v1, &m1);
    let cv2 = cv(&v2, &m2);
    let cvr = cv(&ratio.variance, &ratio.mean);
    println!("antenna 1 amplitude CV² (mean over subcarriers) = {cv1:.5}");
    println!("antenna 2 amplitude CV² (mean over subcarriers) = {cv2:.5}");
    println!("ratio |H1|/|H2| CV²     (mean over subcarriers) = {cvr:.5}");
    println!(
        "paper shape: ratio much more stable → {}",
        if cvr < cv1 && cvr < cv2 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}

/// Fig. 12: the calibration cascade — raw spread → differenced spread →
/// good-subcarrier spread.
pub fn fig12() {
    heading("Fig. 12", "phase calibration performance (library)");
    let (base, tar) = capture_pair(&milk(), Environment::Library, 200, 12, 1.0, &|_| {});
    let raw = raw_phase_spread(&tar, 0, 15);
    let pb = PhaseDifferenceProfile::compute(&base, 0, 1);
    let pt = PhaseDifferenceProfile::compute(&tar, 0, 1);
    let ranked = rank_subcarriers(&pb, &pt);
    let all_spread: f64 = mean(
        &(0..30)
            .map(|k| phase_difference_spread_deg(&tar, 0, 1, k))
            .collect::<Vec<_>>(),
    );
    let good_spread: f64 = mean(
        &ranked[..4]
            .iter()
            .map(|&(k, _)| phase_difference_spread_deg(&tar, 0, 1, k))
            .collect::<Vec<_>>(),
    );
    println!(
        "raw phase spread                      = {:.0}° (paper: uniform 0..360°)",
        raw.spread_deg.min(360.0)
    );
    println!("phase-difference spread (all subcar.) = {all_spread:.1}° (paper: ≈18°)");
    println!("phase-difference spread (good 4)      = {good_spread:.1}° (paper: ≈5°)");
    println!(
        "paper shape: monotone collapse raw → diff → good → {}",
        if raw.spread_deg > all_spread && all_spread > good_spread {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
