//! # wimi-experiments
//!
//! Reproduces every evaluation figure of the WiMi paper (Feng et al.,
//! ICDCS 2019) on the simulated substrate. See `DESIGN.md` for the
//! per-experiment index and `EXPERIMENTS.md` for paper-vs-measured notes.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p wimi-experiments --release -- all
//! ```
//!
//! or a single figure, e.g. `-- fig15`. Pass `--quick` for a reduced-trial
//! smoke run.

pub mod ablation;
pub mod accuracy;
pub mod campaign;
pub mod degradation;
pub mod features;
pub mod fleet;
pub mod harness;
pub mod metrics;
pub mod microbench;
pub mod obs;
pub mod trace;

pub use accuracy::Effort;

/// Runs one named experiment; returns false for unknown names.
pub fn run_named(name: &str, effort: Effort) -> bool {
    match name {
        "fig2" => microbench::fig2(),
        "fig3" => microbench::fig3(),
        "fig6" => microbench::fig6(),
        "fig7" => microbench::fig7(),
        "fig8" => microbench::fig8(),
        "fig9" => features::fig9(),
        "fig10" => features::fig10(),
        "fig12" => microbench::fig12(),
        "fig13" => accuracy::fig13(effort),
        "fig14" => accuracy::fig14(effort),
        "fig15" => accuracy::fig15(effort),
        "fig16" => accuracy::fig16(effort),
        "fig17" => accuracy::fig17(effort),
        "fig18" => accuracy::fig18(effort),
        "fig19" => accuracy::fig19(effort),
        "fig20" => accuracy::fig20(effort),
        "fig21" => accuracy::fig21(effort),
        "anatomy" => features::feature_anatomy(),
        "ablation-p" => ablation::ablation_subcarrier_count(effort),
        "ablation-wavelet" => ablation::ablation_wavelet_family(effort),
        "ablation-classifier" => ablation::ablation_classifier(effort),
        "flow" => ablation::robustness_flowing_liquid(),
        "degradation" => degradation::degradation(effort),
        "obs-report" => obs::obs_report(effort, None, false),
        "trace-report" => trace::trace_report(effort, None),
        "environments" => ablation::environments(effort),
        _ => return false,
    }
    true
}

/// Every experiment name, in report order.
pub const ALL_EXPERIMENTS: [&str; 25] = [
    "fig2",
    "fig3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "anatomy",
    "ablation-p",
    "ablation-wavelet",
    "ablation-classifier",
    "flow",
    "degradation",
    "obs-report",
    "trace-report",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_name_is_rejected() {
        assert!(!run_named("fig99", Effort::quick()));
    }

    #[test]
    fn microbenchmarks_run() {
        assert!(run_named("fig2", Effort::quick()));
        assert!(run_named("fig7", Effort::quick()));
    }
}
