//! Telemetry subcommands: `metrics-validate`, `metrics-diff`, and
//! `fleet-report` over `wimi-metrics/1` timeline artifacts.
//!
//! Exit codes mirror the other artifact tools: 0 = OK, 1 = invalid
//! artifact / real difference, 2 = I/O or usage error.

use wimi_metrics::{diff, parse_and_validate, parse_summary_rows, render_report};

fn read(path: &str, tool: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{tool}: cannot read {path}: {e}");
            std::process::exit(2);
        }
    }
}

/// `metrics-validate PATH`: full fail-closed validation of a
/// `wimi-metrics/1` timeline artifact.
pub fn metrics_validate(path: &str) {
    let text = read(path, "metrics-validate");
    match parse_and_validate(&text) {
        Ok(tl) => {
            eprintln!(
                "metrics-validate: {path} OK ({} ticks retained, {} evicted, {} shards)",
                tl.ticks.len(),
                tl.evicted,
                tl.shards
            );
        }
        Err(e) => {
            eprintln!("metrics-validate: {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// `metrics-diff A B`: validates both artifacts and names the first
/// differing tick/series/shard (exit 1 on difference).
pub fn metrics_diff(path_a: &str, path_b: &str) {
    let a = read(path_a, "metrics-diff");
    let b = read(path_b, "metrics-diff");
    match diff(&a, &b) {
        Ok(()) => eprintln!("metrics-diff: {path_a} and {path_b} carry identical timelines"),
        Err(e) => {
            eprintln!("metrics-diff: {e}");
            std::process::exit(1);
        }
    }
}

/// `fleet-report SUMMARY [--metrics TIMELINE]`: joins a `wimi-serve/1`
/// summary's session rows (and optionally a timeline artifact) into the
/// per-environment × per-material table on stdout.
pub fn fleet_report(summary_path: &str, metrics_path: Option<&str>) {
    let summary = read(summary_path, "fleet-report");
    let rows = match parse_summary_rows(&summary) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("fleet-report: {summary_path}: {e}");
            std::process::exit(1);
        }
    };
    let timeline = metrics_path.map(|path| {
        let text = read(path, "fleet-report");
        match parse_and_validate(&text) {
            Ok(tl) => tl,
            Err(e) => {
                eprintln!("fleet-report: {path}: {e}");
                std::process::exit(1);
            }
        }
    });
    print!("{}", render_report(&rows, timeline.as_ref()));
}
