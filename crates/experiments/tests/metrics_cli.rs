//! End-to-end tests of the telemetry CLI surface (`fleet --metrics-out
//! --slo`, `metrics-validate`, `metrics-diff`, `fleet-report`) through
//! the real binary: the SLO gate exits nonzero naming the first
//! breaching tick, validators fail closed with exit 1, I/O errors exit
//! 2, and the report renders the per-environment × per-material table.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wimi-experiments"))
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("wimi-metrics-{}-{name}", std::process::id()))
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// One tiny fleet run shared by the tests: summary + timeline artifacts.
fn run_tiny_fleet(tag: &str) -> (PathBuf, PathBuf) {
    let summary = temp(&format!("{tag}-fleet.json"));
    let metrics = temp(&format!("{tag}-metrics.jsonl"));
    let out = bin()
        .args([
            "fleet",
            "--sessions",
            "4",
            "--measurements",
            "2",
            "--fleet-out",
            summary.to_str().unwrap_or_default(),
            "--metrics-out",
            metrics.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn fleet");
    assert!(out.status.success(), "{out:?}");
    (summary, metrics)
}

#[test]
fn fleet_writes_a_timeline_that_validates_and_self_diffs() {
    let (summary, metrics) = run_tiny_fleet("roundtrip");
    let out = bin()
        .args(["metrics-validate", metrics.to_str().unwrap_or_default()])
        .output()
        .expect("spawn validate");
    assert!(out.status.success(), "{out:?}");
    assert!(stderr_of(&out).contains("OK"), "{out:?}");

    let out = bin()
        .args([
            "metrics-diff",
            metrics.to_str().unwrap_or_default(),
            metrics.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn diff");
    assert!(out.status.success(), "{out:?}");
    assert!(stderr_of(&out).contains("identical"), "{out:?}");
    fs::remove_file(&summary).ok();
    fs::remove_file(&metrics).ok();
}

#[test]
fn metrics_validate_fails_closed_on_tampering() {
    let (summary, metrics) = run_tiny_fleet("tamper");
    let text = fs::read_to_string(&metrics).expect("read timeline");
    // Break per-tick conservation on the first tick line.
    let tampered = text.replacen("\"requests\":4", "\"requests\":5", 1);
    assert_ne!(tampered, text, "fixture must actually change");
    let bad = temp("tampered.jsonl");
    fs::write(&bad, tampered).expect("write tampered");

    let out = bin()
        .args(["metrics-validate", bad.to_str().unwrap_or_default()])
        .output()
        .expect("spawn validate");
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // And the diff names the first differing tick.
    let out = bin()
        .args([
            "metrics-diff",
            metrics.to_str().unwrap_or_default(),
            bad.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn diff");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    fs::remove_file(&summary).ok();
    fs::remove_file(&metrics).ok();
    fs::remove_file(&bad).ok();
}

#[test]
fn metrics_validate_missing_file_exits_two() {
    let out = bin()
        .args(["metrics-validate", "/nonexistent/nope.jsonl"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn slo_breach_exits_nonzero_and_names_the_first_breaching_tick() {
    let policy = temp("breach.slo");
    // A satisfiable policy passes: the 4-session fleet sheds nothing.
    fs::write(&policy, "max_shed_fraction 0.5\n").expect("write policy");
    let out = bin()
        .args([
            "fleet",
            "--sessions",
            "4",
            "--measurements",
            "2",
            "--slo",
            policy.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn fleet");
    assert!(out.status.success(), "{out:?}");

    // An unsatisfiable queue-peak cap breaches deterministically at tick
    // 0: every tick's per-shard peak is at least 1 once anything queues.
    fs::write(&policy, "max_queue_peak 0\n").expect("rewrite policy");
    let out = bin()
        .args([
            "fleet",
            "--sessions",
            "4",
            "--measurements",
            "2",
            "--slo",
            policy.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn fleet");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = stderr_of(&out);
    assert!(
        err.contains("SLO breach [max_queue_peak]"),
        "breach must name its rule: {err}"
    );
    assert!(err.contains("tick 0"), "breach must name the tick: {err}");
    fs::remove_file(&policy).ok();
}

#[test]
fn malformed_slo_policy_exits_one() {
    let policy = temp("garbage.slo");
    fs::write(&policy, "frobnicate 7\n").expect("write policy");
    let out = bin()
        .args([
            "fleet",
            "--sessions",
            "2",
            "--measurements",
            "1",
            "--slo",
            policy.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn fleet");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(stderr_of(&out).contains("line 1"), "{out:?}");
    fs::remove_file(&policy).ok();
}

#[test]
fn fleet_report_renders_the_environment_material_table() {
    let (summary, metrics) = run_tiny_fleet("report");
    let out = bin()
        .args([
            "fleet-report",
            summary.to_str().unwrap_or_default(),
            "--metrics",
            metrics.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn report");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("environment/material"), "{stdout}");
    assert!(stdout.contains("Lab/"), "{stdout}");
    assert!(stdout.contains("Hall/"), "{stdout}");
    assert!(stdout.contains("total"), "{stdout}");
    assert!(stdout.contains("queue_peak"), "timeline join: {stdout}");
    // Report synthesis is deterministic.
    let again = bin()
        .args([
            "fleet-report",
            summary.to_str().unwrap_or_default(),
            "--metrics",
            metrics.to_str().unwrap_or_default(),
        ])
        .output()
        .expect("spawn report again");
    assert_eq!(out.stdout, again.stdout);
    fs::remove_file(&summary).ok();
    fs::remove_file(&metrics).ok();
}

#[test]
fn shipped_slo_fixtures_behave_as_documented() {
    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let pass = repo.join("slo/fleet.slo");
    let breach = repo.join("slo/breach.slo");

    let out = bin()
        .args(["fleet", "--slo", pass.to_str().unwrap_or_default()])
        .output()
        .expect("spawn fleet");
    assert!(out.status.success(), "shipped policy must pass: {out:?}");
    assert!(stderr_of(&out).contains("SLO check OK"), "{out:?}");

    let out = bin()
        .args(["fleet", "--slo", breach.to_str().unwrap_or_default()])
        .output()
        .expect("spawn fleet");
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded breach must trip: {out:?}"
    );
    assert!(stderr_of(&out).contains("tick 0"), "{out:?}");
}
