//! End-to-end tests of the campaign CLI surface (`campaign-validate`,
//! `campaign-run`, `campaign-diff`) through the real binary, pinning the
//! obs-validate error conventions: one-line stderr message, exit 1 for
//! invalid campaigns, exit 2 for I/O and usage errors.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wimi-experiments"))
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("wimi-cli-{}-{name}", std::process::id()));
    fs::write(&path, contents).expect("write temp campaign");
    path
}

fn stderr_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stderr)
        .lines()
        .map(str::to_owned)
        .collect()
}

#[test]
fn validate_accepts_shipped_campaigns() {
    let campaigns = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../campaigns");
    for name in ["degradation", "environments", "matrix"] {
        let path = campaigns.join(format!("{name}.campaign"));
        let out = bin()
            .args(["campaign-validate", path.to_str().unwrap()])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{name}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.starts_with("ok: "), "{name}: {stdout}");
        assert!(stdout.contains(&format!("campaign \"{name}\"")), "{stdout}");
    }
}

#[test]
fn validate_rejects_malformed_file_with_one_line_error() {
    let path = write_temp("bad.campaign", "campaign bad\naxis moon = 1\n");
    let out = bin()
        .args(["campaign-validate", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    fs::remove_file(&path).ok();

    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let lines = stderr_lines(&out);
    assert_eq!(lines.len(), 1, "exactly one stderr line: {lines:?}");
    assert!(
        lines[0].contains("line 2, col 6: unknown axis `moon`"),
        "{lines:?}"
    );
    assert!(
        lines[0].starts_with(path.to_str().unwrap()),
        "error must name the file: {lines:?}"
    );
}

#[test]
fn validate_missing_file_exits_two() {
    let out = bin()
        .args(["campaign-validate", "/nonexistent/nope.campaign"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert_eq!(stderr_lines(&out).len(), 1);
}

#[test]
fn run_rejects_malformed_file_with_one_line_error() {
    let path = write_temp("bad-run.campaign", "campaign bad\ntest 2\nat 7 fault 0.5\n");
    let out = bin()
        .args(["campaign-run", path.to_str().unwrap()])
        .output()
        .expect("spawn");
    fs::remove_file(&path).ok();

    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let lines = stderr_lines(&out);
    assert_eq!(lines.len(), 1, "exactly one stderr line: {lines:?}");
    assert!(lines[0].contains("line 3, col 4"), "{lines:?}");
}

#[test]
fn run_replays_one_cell_and_diff_detects_both_match_and_mismatch() {
    let text = "campaign clidemo\nseed 9\ntrain 2\ntest 2\n\
                axis materials = PureWater+Honey\naxis packets = 6\naxis intensity = 0, 0.2\n";
    let path = write_temp("clidemo.campaign", text);
    let base = std::env::temp_dir().join(format!("wimi-cli-out-{}", std::process::id()));
    let dir_a = base.join("a");
    let dir_b = base.join("b");

    for dir in [&dir_a, &dir_b] {
        let out = bin()
            .args([
                "campaign-run",
                path.to_str().unwrap(),
                "--campaign-out",
                dir.to_str().unwrap(),
            ])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "{out:?}");
    }

    // Identical runs diff clean.
    let out = bin()
        .args([
            "campaign-diff",
            dir_a.to_str().unwrap(),
            dir_b.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");

    // Replaying cell 1 in isolation reproduces the full run's artifact.
    let solo = base.join("solo");
    let out = bin()
        .args([
            "campaign-run",
            path.to_str().unwrap(),
            "--cell",
            "1",
            "--campaign-out",
            solo.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{out:?}");
    let replayed = fs::read(solo.join("clidemo-cell-0001.jsonl")).expect("replayed artifact");
    let original = fs::read(dir_a.join("clidemo-cell-0001.jsonl")).expect("original artifact");
    assert_eq!(replayed, original, "cell replay must be byte-identical");

    // A corrupted artifact makes the diff fail loudly.
    let target = dir_b.join("clidemo-cell-0000.jsonl");
    let mut tampered = fs::read_to_string(&target).expect("artifact");
    tampered.push('\n');
    fs::write(&target, tampered.replace("\"cell\":0", "\"cell\":0 ")).expect("tamper");
    let out = bin()
        .args([
            "campaign-diff",
            dir_a.to_str().unwrap(),
            dir_b.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "tampered diff must fail: {out:?}");

    fs::remove_file(&path).ok();
    fs::remove_dir_all(&base).ok();
}
