//! Typed flight-recorder events and the deterministic task keys that
//! order them.

use std::fmt;

use wimi_obs::{CounterId, IssueId, StageId};

/// Deterministic identity of the unit of work emitting events.
///
/// The global event order in an artifact is `(group, id, seq)` — nothing
/// about it depends on which OS thread ran the work or when, which is
/// what makes traces byte-identical under any `WIMI_THREADS` setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TaskKey {
    /// Task family: 0 = run-level, 1 = measurement, 2 = SVM machine.
    pub group: u8,
    /// Deterministic id within the family (a measurement's seed, a
    /// packed class pair, 0 for the run task).
    pub id: u64,
}

impl TaskKey {
    /// The ambient run-level task (setup, serial orchestration).
    pub const RUN: TaskKey = TaskKey { group: 0, id: 0 };

    /// The task for one logical measurement, keyed by its seed — the
    /// same identity the deterministic fan-out already uses.
    pub fn measurement(seed: u64) -> TaskKey {
        TaskKey { group: 1, id: seed }
    }

    /// The task for one one-vs-one SVM machine, keyed by its class pair.
    pub fn svm_machine(class_a: usize, class_b: usize) -> TaskKey {
        let a = (class_a as u64) & 0xFFFF_FFFF;
        let b = (class_b as u64) & 0xFFFF_FFFF;
        TaskKey {
            group: 2,
            id: (a << 32) | b,
        }
    }

    /// The task for one `wimi-serve` session, keyed by its session id.
    pub fn session(id: u64) -> TaskKey {
        TaskKey { group: 3, id }
    }

    /// Parses a label produced by this type's `Display` back into a key:
    /// `"run"`, `"meas:<id>"`, `"svm:<a>x<b>"`, `"sess:<id>"`.
    ///
    /// The parser is strict — ids must be bare decimal digits (no sign,
    /// no leading `+`), svm class halves must fit 32 bits, and unknown
    /// group labels (`g<n>:<id>`) return `None` — so readers that
    /// cross-link artifacts through labels (the `wimi-metrics` timeline's
    /// exhausted-session lists) fail closed on anything `Display` could
    /// not have written.
    pub fn from_label(label: &str) -> Option<TaskKey> {
        fn digits(text: &str) -> Option<u64> {
            if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            text.parse().ok()
        }
        if label == "run" {
            return Some(TaskKey::RUN);
        }
        let (prefix, rest) = label.split_once(':')?;
        match prefix {
            "meas" => digits(rest).map(TaskKey::measurement),
            "sess" => digits(rest).map(TaskKey::session),
            "svm" => {
                let (a, b) = rest.split_once('x')?;
                let (a, b) = (digits(a)?, digits(b)?);
                if a > 0xFFFF_FFFF || b > 0xFFFF_FFFF {
                    return None;
                }
                Some(TaskKey::svm_machine(a as usize, b as usize))
            }
            _ => None,
        }
    }
}

impl fmt::Display for TaskKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.group {
            0 => write!(f, "run"),
            1 => write!(f, "meas:{}", self.id),
            2 => write!(f, "svm:{}x{}", self.id >> 32, self.id & 0xFFFF_FFFF),
            3 => write!(f, "sess:{}", self.id),
            g => write!(f, "g{g}:{}", self.id),
        }
    }
}

/// Optional locating context attached to an issue occurrence: which
/// packet / subcarrier / antenna pair the triage decision was about.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ctx {
    /// Packet index within the capture, when the issue is per-packet.
    pub packet: Option<u32>,
    /// Subcarrier index, when the issue is per-subcarrier.
    pub subcarrier: Option<u32>,
    /// Single receive-antenna index, when the issue is per-antenna.
    pub antenna: Option<u32>,
    /// Antenna pair `(rx_a, rx_b)`, when the issue is per-pair.
    pub pair: Option<(u32, u32)>,
}

impl Ctx {
    /// No locating context.
    pub const NONE: Ctx = Ctx {
        packet: None,
        subcarrier: None,
        antenna: None,
        pair: None,
    };

    /// Context naming a packet index.
    pub fn packet(index: u32) -> Ctx {
        Ctx {
            packet: Some(index),
            ..Ctx::NONE
        }
    }

    /// Context naming a subcarrier index.
    pub fn subcarrier(index: u32) -> Ctx {
        Ctx {
            subcarrier: Some(index),
            ..Ctx::NONE
        }
    }

    /// Context naming a single receive antenna.
    pub fn antenna(index: u32) -> Ctx {
        Ctx {
            antenna: Some(index),
            ..Ctx::NONE
        }
    }

    /// Context naming an antenna pair.
    pub fn pair(a: u32, b: u32) -> Ctx {
        Ctx {
            pair: Some((a, b)),
            ..Ctx::NONE
        }
    }
}

/// One flight-recorder event. Everything a `Recorder` aggregates plus
/// the ordered, per-measurement detail the aggregates throw away.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A stage span opened.
    Enter {
        /// The stage.
        stage: StageId,
    },
    /// A stage span closed.
    Exit {
        /// The stage.
        stage: StageId,
    },
    /// A counter was bumped by `delta`.
    Count {
        /// Which counter.
        counter: CounterId,
        /// Increment applied.
        delta: u64,
    },
    /// A quality issue occurred, with optional locating context.
    Issue {
        /// Which issue kind.
        issue: IssueId,
        /// Occurrence count.
        count: u64,
        /// Where (packet / subcarrier / antenna pair), when known.
        ctx: Ctx,
    },
    /// A salvage action was taken during screening.
    Salvage {
        /// Stable action name (e.g. `"drop_dead_antenna"`).
        action: &'static str,
        /// How many items it affected.
        count: u64,
    },
    /// One retry attempt of a measurement began (1-based).
    Attempt {
        /// Attempt number, starting at 1.
        attempt: u32,
        /// The policy's allowed attempts.
        max: u32,
    },
    /// The retry policy gave up on a measurement.
    RetriesExhausted {
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// A measurement resolved a feature.
    Feature {
        /// Antenna pairs consistent under the winning γ assignment.
        pairs: u32,
        /// Smallest resolved per-pair γ.
        gamma_min: i32,
        /// Largest resolved per-pair γ.
        gamma_max: i32,
        /// Cross-pair Ω̄ dispersion.
        dispersion: f64,
    },
    /// A measurement failed at `stage` with `issue`.
    Failed {
        /// The stage that refused.
        stage: StageId,
        /// The dominant issue kind behind the refusal.
        issue: IssueId,
    },
    /// One one-vs-one SVM machine finished training.
    SvmMachine {
        /// First class index of the pair.
        class_a: u32,
        /// Second class index of the pair.
        class_b: u32,
        /// Optimisation rounds the trainer ran.
        rounds: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event type (the `"ev"` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Enter { .. } => "enter",
            TraceEvent::Exit { .. } => "exit",
            TraceEvent::Count { .. } => "count",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Salvage { .. } => "salvage",
            TraceEvent::Attempt { .. } => "attempt",
            TraceEvent::RetriesExhausted { .. } => "retries_exhausted",
            TraceEvent::Feature { .. } => "feature",
            TraceEvent::Failed { .. } => "failed",
            TraceEvent::SvmMachine { .. } => "svm_machine",
        }
    }

    /// All event type names, canonical order (used by the validator).
    pub const NAMES: [&'static str; 10] = [
        "enter",
        "exit",
        "count",
        "issue",
        "salvage",
        "attempt",
        "retries_exhausted",
        "feature",
        "failed",
        "svm_machine",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_keys_order_by_group_then_id() {
        let mut keys = vec![
            TaskKey::svm_machine(0, 1),
            TaskKey::measurement(7),
            TaskKey::RUN,
            TaskKey::measurement(3),
        ];
        keys.sort();
        assert_eq!(
            keys,
            vec![
                TaskKey::RUN,
                TaskKey::measurement(3),
                TaskKey::measurement(7),
                TaskKey::svm_machine(0, 1),
            ]
        );
    }

    #[test]
    fn task_key_labels_are_stable() {
        assert_eq!(TaskKey::RUN.to_string(), "run");
        assert_eq!(TaskKey::measurement(42).to_string(), "meas:42");
        assert_eq!(TaskKey::svm_machine(2, 9).to_string(), "svm:2x9");
    }

    #[test]
    fn every_event_name_is_listed() {
        let events = [
            TraceEvent::Enter {
                stage: StageId::Capture,
            },
            TraceEvent::Exit {
                stage: StageId::Capture,
            },
            TraceEvent::Count {
                counter: CounterId::PacketsKept,
                delta: 1,
            },
            TraceEvent::Issue {
                issue: IssueId::DeadAntenna,
                count: 1,
                ctx: Ctx::NONE,
            },
            TraceEvent::Salvage {
                action: "x",
                count: 1,
            },
            TraceEvent::Attempt { attempt: 1, max: 4 },
            TraceEvent::RetriesExhausted { attempts: 4 },
            TraceEvent::Feature {
                pairs: 3,
                gamma_min: 0,
                gamma_max: 1,
                dispersion: 0.1,
            },
            TraceEvent::Failed {
                stage: StageId::GammaResolution,
                issue: IssueId::PairsUnresolved,
            },
            TraceEvent::SvmMachine {
                class_a: 0,
                class_b: 1,
                rounds: 10,
            },
        ];
        for ev in &events {
            assert!(TraceEvent::NAMES.contains(&ev.name()), "{}", ev.name());
        }
    }

    #[test]
    fn task_labels_round_trip_through_from_label() {
        let keys = [
            TaskKey::RUN,
            TaskKey::measurement(0),
            TaskKey::measurement(u64::MAX),
            TaskKey::session(7),
            TaskKey::svm_machine(3, 9),
            TaskKey::svm_machine(0xFFFF_FFFF, 0),
        ];
        for key in keys {
            assert_eq!(TaskKey::from_label(&key.to_string()), Some(key));
        }
    }

    #[test]
    fn from_label_rejects_what_display_never_writes() {
        for bad in [
            "",
            "runx",
            "sess:",
            "sess:+3",
            "sess:03x",
            "sess:-1",
            "meas:1.0",
            "svm:1",
            "svm:1x",
            "svm:x2",
            "svm:4294967296x0",
            "g7:3",
            "session:1",
            "sess:1 ",
        ] {
            assert_eq!(TaskKey::from_label(bad), None, "{bad:?} must not parse");
        }
    }
}
