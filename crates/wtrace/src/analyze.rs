//! Artifact analysis: human summaries, first-divergence diffing, and
//! deterministic work-counter budget gates.

use std::fmt::Write as _;

use wimi_obs::json::Json;

use crate::artifact::{parse_and_validate, Artifact};

/// Renders a deterministic human-readable summary of an artifact:
/// header totals, event-type mix, per-stage span balance, issue tallies,
/// and — when the run failed — the tail of each failing task's stream so
/// the failing stage/issue is visible at a glance.
pub fn summary(text: &str) -> Result<String, String> {
    let artifact = parse_and_validate(text)?;
    let mut out = String::new();
    let h = artifact.header;
    let _ = writeln!(
        out,
        "wimi-trace/1: {} tasks, {} events ({} emitted), {} failures, {} tasks truncated",
        h.tasks, h.events, h.events_emitted, h.failures, h.tasks_truncated
    );

    let mut by_ev: Vec<(&str, u64)> = Vec::new();
    for line in &artifact.events {
        match by_ev.iter_mut().find(|(name, _)| *name == line.ev) {
            Some((_, n)) => *n += 1,
            None => by_ev.push((&line.ev, 1)),
        }
    }
    by_ev.sort();
    out.push_str("events by type:\n");
    for (name, n) in &by_ev {
        let _ = writeln!(out, "  {name:<20} {n:>8}");
    }

    let mut issues: Vec<(&str, u64)> = Vec::new();
    for line in &artifact.events {
        if line.ev == "issue" {
            if let Some(name) = line.value.get("issue").and_then(Json::as_str) {
                let count = line.value.get("count").and_then(Json::as_u64).unwrap_or(0);
                match issues.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, total)) => *total += count,
                    None => issues.push((name, count)),
                }
            }
        }
    }
    issues.sort();
    if !issues.is_empty() {
        out.push_str("issues:\n");
        for (name, n) in &issues {
            let _ = writeln!(out, "  {name:<20} {n:>8}");
        }
    }

    if h.failures > 0 {
        out.push_str("failing tasks (stream tails):\n");
        // A task counts as failing when its *last* outcome event is a
        // failure — a rejected attempt that a later retry recovered from
        // (failed … feature) is not a failing task.
        let mut outcomes: Vec<(&str, bool)> = Vec::new();
        for line in &artifact.events {
            let failing = match line.ev.as_str() {
                "failed" | "retries_exhausted" => true,
                "feature" => false,
                _ => continue,
            };
            match outcomes.iter_mut().find(|(t, _)| *t == line.task) {
                Some((_, f)) => *f = failing,
                None => outcomes.push((line.task.as_str(), failing)),
            }
        }
        let failing: Vec<&str> = outcomes
            .iter()
            .filter(|(_, f)| *f)
            .map(|(t, _)| *t)
            .collect();
        for task in dedup_in_order(&failing) {
            let tail: Vec<&crate::artifact::EventLine> =
                artifact.events.iter().filter(|l| l.task == task).collect();
            let start = tail.len().saturating_sub(5);
            let _ = writeln!(out, "  {task}:");
            for line in &tail[start..] {
                let _ = writeln!(out, "    seq {:>4}  {}", line.seq, describe(line));
            }
        }
    }
    Ok(out)
}

fn dedup_in_order<'a>(items: &[&'a str]) -> Vec<&'a str> {
    let mut seen: Vec<&str> = Vec::new();
    for &it in items {
        if !seen.contains(&it) {
            seen.push(it);
        }
    }
    seen
}

fn describe(line: &crate::artifact::EventLine) -> String {
    let v = &line.value;
    let s = |key: &str| v.get(key).and_then(Json::as_str).unwrap_or("?");
    let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
    match line.ev.as_str() {
        "enter" => format!("enter {}", s("stage")),
        "exit" => format!("exit {}", s("stage")),
        "count" => format!("count {} +{}", s("counter"), n("delta")),
        "issue" => format!("issue {} x{}", s("issue"), n("count")),
        "salvage" => format!("salvage {} x{}", s("action"), n("count")),
        "attempt" => format!("attempt {}/{}", n("attempt"), n("max")),
        "retries_exhausted" => format!("retries exhausted after {}", n("attempts")),
        "feature" => format!("feature from {} pairs", n("pairs")),
        "failed" => format!("FAILED at {} ({})", s("stage"), s("issue")),
        "svm_machine" => format!("svm machine {}x{}", n("class_a"), n("class_b")),
        other => other.to_string(),
    }
}

/// Outcome of diffing two artifacts line-by-line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The artifacts are byte-identical.
    Identical,
    /// The artifacts first differ at 1-based `line_no`.
    Diverged {
        /// First differing line (1-based).
        line_no: usize,
        /// A human-readable report: the diverging line from each side
        /// plus surrounding context.
        report: String,
    },
}

/// Compares two artifacts and reports the first diverging line with
/// surrounding context. A missing line on one side (different lengths)
/// also counts as divergence.
pub fn diff(a: &str, b: &str) -> DiffOutcome {
    if a == b {
        return DiffOutcome::Identical;
    }
    let a_lines: Vec<&str> = a.lines().collect();
    let b_lines: Vec<&str> = b.lines().collect();
    let n = a_lines.len().max(b_lines.len());
    for i in 0..n {
        let la = a_lines.get(i).copied();
        let lb = b_lines.get(i).copied();
        if la == lb {
            continue;
        }
        let mut report = String::new();
        let _ = writeln!(report, "first divergence at line {}:", i + 1);
        let ctx_start = i.saturating_sub(2);
        for j in ctx_start..i {
            if let Some(l) = a_lines.get(j) {
                let _ = writeln!(report, "  {:>5}   {l}", j + 1);
            }
        }
        let _ = writeln!(
            report,
            "  {:>5} A {}",
            i + 1,
            la.unwrap_or("<end of artifact>")
        );
        let _ = writeln!(
            report,
            "  {:>5} B {}",
            i + 1,
            lb.unwrap_or("<end of artifact>")
        );
        for j in (i + 1)..(i + 3) {
            match (a_lines.get(j), b_lines.get(j)) {
                (Some(l), _) | (None, Some(l)) => {
                    let _ = writeln!(report, "  {:>5}   {l}", j + 1);
                }
                (None, None) => break,
            }
        }
        return DiffOutcome::Diverged {
            line_no: i + 1,
            report,
        };
    }
    // Unreachable in practice (a != b implies some line differs), but
    // stay panic-free and conservative.
    DiffOutcome::Diverged {
        line_no: 0,
        report: "artifacts differ only in trailing whitespace".into(),
    }
}

/// One budget comparison row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetRow {
    /// Work-counter name.
    pub name: String,
    /// Actual value measured from the artifact.
    pub actual: u64,
    /// Committed ceiling from the bench summary.
    pub budget: u64,
    /// Whether `actual` stayed within `budget`.
    pub ok: bool,
}

/// Checks an artifact's deterministic work counters against the
/// `work_budgets` object of a committed bench summary (`BENCH_PR5.json`).
///
/// `trace_events` is compared against the sink's total emissions; every
/// other budget name is looked up in the embedded obs snapshot's
/// counters. Exceeding any ceiling fails; unknown budget names fail too
/// (a renamed counter must not silently stop gating).
pub fn check_budgets(bench_json: &str, artifact_text: &str) -> Result<Vec<BudgetRow>, String> {
    let artifact = parse_and_validate(artifact_text)?;
    let bench = wimi_obs::json::parse(bench_json).map_err(|e| format!("bench summary: {e}"))?;
    let Some(Json::Obj(budgets)) = bench.get("work_budgets") else {
        return Err("bench summary has no \"work_budgets\" object".into());
    };
    if budgets.is_empty() {
        return Err("\"work_budgets\" is empty — nothing to gate on".into());
    }
    let mut rows = Vec::new();
    for (name, value) in budgets {
        let budget = value
            .as_u64()
            .ok_or_else(|| format!("budget \"{name}\" must be a non-negative integer"))?;
        let actual = lookup_metric(&artifact, name)?;
        rows.push(BudgetRow {
            name: name.clone(),
            actual,
            budget,
            ok: actual <= budget,
        });
    }
    Ok(rows)
}

fn lookup_metric(artifact: &Artifact, name: &str) -> Result<u64, String> {
    if name == "trace_events" {
        return Ok(artifact.header.events_emitted);
    }
    let counters = artifact
        .obs
        .get("counters")
        .ok_or_else(|| format!("budget \"{name}\": artifact embeds no obs snapshot counters"))?;
    counters.get(name).and_then(Json::as_u64).ok_or_else(|| {
        format!("budget \"{name}\" does not match any obs counter (renamed or removed?)")
    })
}

/// Renders budget rows as a fixed-width table, one row per line.
pub fn budget_table(rows: &[BudgetRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12}  status",
        "work counter", "actual", "budget"
    );
    for row in rows {
        let status = if row.ok { "ok" } else { "OVER BUDGET" };
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12}  {status}",
            row.name, row.actual, row.budget
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::render;
    use crate::event::{Ctx, TaskKey, TraceEvent};
    use crate::sink::{task_scope, TraceSink};
    use wimi_obs::{CounterId, IssueId, Recorder, StageId};

    fn failing_artifact() -> String {
        let sink = TraceSink::enabled();
        {
            let _scope = task_scope(TaskKey::measurement(3));
            sink.emit(TraceEvent::Attempt { attempt: 1, max: 2 });
            sink.emit(TraceEvent::Issue {
                issue: IssueId::ShortCapture,
                count: 1,
                ctx: Ctx::packet(7),
            });
            sink.emit(TraceEvent::Failed {
                stage: StageId::Screening,
                issue: IssueId::ShortCapture,
            });
            sink.emit(TraceEvent::Attempt { attempt: 2, max: 2 });
            sink.emit(TraceEvent::Failed {
                stage: StageId::Screening,
                issue: IssueId::ShortCapture,
            });
            sink.emit(TraceEvent::RetriesExhausted { attempts: 2 });
        }
        sink.mark_failure();
        let rec = Recorder::enabled();
        rec.incr(CounterId::MeasurementsFailed);
        render(&sink.flush(), Some(&rec.snapshot().to_json()))
    }

    #[test]
    fn summary_localizes_the_failing_stage_and_issue() {
        let text = summary(&failing_artifact()).unwrap();
        assert!(text.contains("1 failures"), "{text}");
        assert!(text.contains("meas:3"), "{text}");
        assert!(
            text.contains("FAILED at screening (short_capture)"),
            "{text}"
        );
        assert!(text.contains("retries exhausted after 2"), "{text}");
    }

    #[test]
    fn diff_identical_artifacts() {
        let a = failing_artifact();
        assert_eq!(diff(&a, &a.clone()), DiffOutcome::Identical);
    }

    #[test]
    fn diff_reports_first_divergence_with_context() {
        let a = failing_artifact();
        let b = a.replacen("\"attempt\":2", "\"attempt\":3", 1);
        match diff(&a, &b) {
            DiffOutcome::Diverged { line_no, report } => {
                assert!(line_no > 1);
                assert!(report.contains("first divergence"), "{report}");
                assert!(report.contains(" A "), "{report}");
                assert!(report.contains(" B "), "{report}");
            }
            DiffOutcome::Identical => panic!("must diverge"),
        }
    }

    #[test]
    fn diff_handles_length_mismatch() {
        let a = failing_artifact();
        let b: String = a.lines().take(3).map(|l| format!("{l}\n")).collect();
        match diff(&a, &b) {
            DiffOutcome::Diverged { report, .. } => {
                assert!(report.contains("<end of artifact>"), "{report}");
            }
            DiffOutcome::Identical => panic!("must diverge"),
        }
    }

    #[test]
    fn budgets_pass_within_and_fail_over() {
        let artifact = failing_artifact();
        let ok = r#"{"work_budgets": {"trace_events": 10, "measurements_failed": 1}}"#;
        let rows = check_budgets(ok, &artifact).unwrap();
        assert!(rows.iter().all(|r| r.ok), "{rows:?}");
        let over = r#"{"work_budgets": {"trace_events": 3}}"#;
        let rows = check_budgets(over, &artifact).unwrap();
        assert!(rows.iter().any(|r| !r.ok), "{rows:?}");
        let table = budget_table(&rows);
        assert!(table.contains("OVER BUDGET"), "{table}");
    }

    #[test]
    fn budgets_reject_unknown_names_and_missing_section() {
        let artifact = failing_artifact();
        let unknown = r#"{"work_budgets": {"warp_cores": 1}}"#;
        assert!(check_budgets(unknown, &artifact).is_err());
        assert!(check_budgets("{}", &artifact).is_err());
        assert!(check_budgets(r#"{"work_budgets": {}}"#, &artifact).is_err());
    }
}
