//! The [`TraceSink`]: bounded per-task event rings behind one shared,
//! thread-safe handle, with a thread-local *current task* so pipeline
//! code can emit without threading a key through every call.
//!
//! ## Determinism model
//!
//! The deterministic fan-out (`wml::par::map`) runs each job entirely on
//! one worker thread, so a thread-local task key installed at the top of
//! a job scopes every emission inside it. Each task carries its own
//! monotone sequence number — the logical clock — and the flushed log
//! orders events by `(task, seq)`. Neither depends on scheduling, so the
//! rendered artifact is byte-identical under any `WIMI_THREADS`.
//!
//! Two bounds keep memory flat without breaking that guarantee:
//!
//! * each task ring holds at most `ring_capacity` events, dropping the
//!   *oldest* first (per-task streams are deterministic, so what gets
//!   dropped is too; the first retained `seq` records the gap);
//! * [`TraceSink::flush`] emits at most `max_tasks` task streams, the
//!   smallest keys first (a sort-then-truncate at flush time — unlike
//!   insert-time eviction, it cannot depend on arrival order).

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::{TaskKey, TraceEvent};

/// Default per-task ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Default maximum task streams in a flushed log.
pub const DEFAULT_MAX_TASKS: usize = 1024;

thread_local! {
    static CURRENT_TASK: Cell<TaskKey> = const { Cell::new(TaskKey::RUN) };
}

/// Installs `key` as the current task for this thread until the guard
/// drops; the previous key is restored (scopes nest).
///
/// Worker threads created by an inner `par::map` do **not** inherit the
/// key — code running inside a nested fan-out must not emit (it would be
/// misattributed to the worker's default `run` task); emit after the
/// join instead.
pub fn task_scope(key: TaskKey) -> TaskScope {
    let prev = CURRENT_TASK.with(|c| c.replace(key));
    TaskScope { prev }
}

/// RAII guard returned by [`task_scope`].
#[must_use = "the task scope ends when this guard drops"]
pub struct TaskScope {
    prev: TaskKey,
}

impl Drop for TaskScope {
    fn drop(&mut self) {
        CURRENT_TASK.with(|c| c.set(self.prev));
    }
}

struct TaskRing {
    events: VecDeque<TraceEvent>,
    /// Sequence number the *next* emission gets; events in the ring
    /// cover `next_seq - events.len() .. next_seq`.
    next_seq: u64,
}

/// One task's retained event stream in a flushed [`TraceLog`].
#[derive(Debug, Clone, PartialEq)]
pub struct TaskStream {
    /// The task identity.
    pub key: TaskKey,
    /// Sequence number of the first retained event (> 0 when the ring
    /// dropped older events).
    pub first_seq: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A point-in-time, deterministic flush of a [`TraceSink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLog {
    /// Retained task streams, sorted by key; at most `max_tasks`.
    pub tasks: Vec<TaskStream>,
    /// Total emissions attempted (including ring-dropped events).
    pub events_emitted: u64,
    /// Measurements marked as hard failures (retry budget exhausted).
    pub failures: u64,
    /// Task streams cut by the flush-time `max_tasks` bound.
    pub tasks_truncated: u64,
}

/// The flight-recorder sink. Shared via `Arc`, thread-safe, and
/// zero-cost when disabled: [`TraceSink::emit`] is one branch before any
/// thread-local read or lock.
pub struct TraceSink {
    enabled: bool,
    ring_capacity: usize,
    max_tasks: usize,
    events_emitted: AtomicU64,
    failures: AtomicU64,
    tasks: Mutex<BTreeMap<TaskKey, TaskRing>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled)
            .field("ring_capacity", &self.ring_capacity)
            .field("max_tasks", &self.max_tasks)
            .field("events_emitted", &self.events_emitted())
            .field("failures", &self.failures())
            .finish_non_exhaustive()
    }
}

impl TraceSink {
    /// A disabled sink: every emission is a no-op, nothing allocates.
    pub fn disabled() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled: false,
            ring_capacity: 0,
            max_tasks: 0,
            events_emitted: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            tasks: Mutex::new(BTreeMap::new()),
        })
    }

    /// An enabled sink with default bounds.
    pub fn enabled() -> Arc<TraceSink> {
        TraceSink::with_bounds(DEFAULT_RING_CAPACITY, DEFAULT_MAX_TASKS)
    }

    /// An enabled sink with explicit per-task ring capacity and
    /// flush-time task-stream bound (both floored at 1).
    pub fn with_bounds(ring_capacity: usize, max_tasks: usize) -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled: true,
            ring_capacity: ring_capacity.max(1),
            max_tasks: max_tasks.max(1),
            events_emitted: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            tasks: Mutex::new(BTreeMap::new()),
        })
    }

    /// Whether emissions are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits `event` against the calling thread's current task (see
    /// [`task_scope`]).
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        let key = CURRENT_TASK.with(|c| c.get());
        self.emit_for(key, event);
    }

    /// Emits `event` against an explicit task.
    pub fn emit_for(&self, key: TaskKey, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.events_emitted.fetch_add(1, Ordering::Relaxed);
        let Ok(mut tasks) = self.tasks.lock() else {
            // A poisoned lock means another emitter panicked; tracing is
            // best-effort, so drop the event rather than propagate.
            return;
        };
        let ring = tasks.entry(key).or_insert_with(|| TaskRing {
            events: VecDeque::new(),
            next_seq: 0,
        });
        if ring.events.len() >= self.ring_capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(event);
        ring.next_seq += 1;
    }

    /// Opens a stage span: emits `Enter` now and `Exit` when the guard
    /// drops, both against the current task.
    pub fn span(self: &Arc<Self>, stage: wimi_obs::StageId) -> TraceSpan {
        self.emit(TraceEvent::Enter { stage });
        TraceSpan {
            sink: Arc::clone(self),
            stage,
        }
    }

    /// Records that a measurement failed for good (its retry budget is
    /// exhausted). Harnesses use a nonzero count to trigger
    /// dump-on-failure.
    pub fn mark_failure(&self) {
        if self.enabled {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Hard failures marked so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Total emissions attempted so far (schedule-independent).
    pub fn events_emitted(&self) -> u64 {
        self.events_emitted.load(Ordering::Relaxed)
    }

    /// Flushes a deterministic snapshot of the recorded streams: tasks
    /// sorted by key, truncated to the `max_tasks` smallest, per-task
    /// events oldest-first. Does not clear the sink.
    pub fn flush(&self) -> TraceLog {
        let Ok(tasks) = self.tasks.lock() else {
            return TraceLog {
                tasks: Vec::new(),
                events_emitted: self.events_emitted(),
                failures: self.failures(),
                tasks_truncated: 0,
            };
        };
        let total = tasks.len();
        let kept = total.min(self.max_tasks);
        let streams = tasks
            .iter()
            .take(kept)
            .map(|(&key, ring)| TaskStream {
                key,
                first_seq: ring.next_seq - ring.events.len() as u64,
                events: ring.events.iter().cloned().collect(),
            })
            .collect();
        TraceLog {
            tasks: streams,
            events_emitted: self.events_emitted(),
            failures: self.failures(),
            tasks_truncated: (total - kept) as u64,
        }
    }
}

/// An open trace span; dropping it emits the `Exit` event.
#[must_use = "a span emits Exit on drop; binding it to `_` drops immediately"]
pub struct TraceSpan {
    sink: Arc<TraceSink>,
    stage: wimi_obs::StageId,
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.sink.emit(TraceEvent::Exit { stage: self.stage });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimi_obs::{CounterId, StageId};

    fn count(n: u64) -> TraceEvent {
        TraceEvent::Count {
            counter: CounterId::PacketsKept,
            delta: n,
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        sink.emit(count(1));
        sink.emit_for(TaskKey::measurement(1), count(2));
        sink.mark_failure();
        let log = sink.flush();
        assert!(log.tasks.is_empty());
        assert_eq!(log.events_emitted, 0);
        assert_eq!(log.failures, 0);
        assert_eq!(sink.events_emitted(), 0);
    }

    #[test]
    fn task_scope_routes_and_restores() {
        let sink = TraceSink::enabled();
        sink.emit(count(1)); // run task
        {
            let _scope = task_scope(TaskKey::measurement(9));
            sink.emit(count(2));
            {
                let _inner = task_scope(TaskKey::svm_machine(0, 1));
                sink.emit(count(3));
            }
            sink.emit(count(4));
        }
        sink.emit(count(5)); // back on run
        let log = sink.flush();
        let keys: Vec<TaskKey> = log.tasks.iter().map(|t| t.key).collect();
        assert_eq!(
            keys,
            vec![
                TaskKey::RUN,
                TaskKey::measurement(9),
                TaskKey::svm_machine(0, 1)
            ]
        );
        assert_eq!(log.tasks[0].events, vec![count(1), count(5)]);
        assert_eq!(log.tasks[1].events, vec![count(2), count(4)]);
        assert_eq!(log.tasks[2].events, vec![count(3)]);
    }

    #[test]
    fn flush_order_is_independent_of_emission_interleaving() {
        // Simulate two thread schedules of the same three tasks by
        // interleaving emit_for calls differently; the flushed logs
        // must be identical.
        let run = |order: &[(u64, u64)]| {
            let sink = TraceSink::enabled();
            for &(task, v) in order {
                sink.emit_for(TaskKey::measurement(task), count(v));
            }
            sink.flush()
        };
        // Per-task subsequences are equal; global interleaving differs.
        let a = run(&[(1, 10), (2, 20), (1, 11), (3, 30), (2, 21)]);
        let b = run(&[(3, 30), (1, 10), (1, 11), (2, 20), (2, 21)]);
        assert_eq!(a, b);
    }

    #[test]
    fn ring_drops_oldest_and_tracks_first_seq() {
        let sink = TraceSink::with_bounds(3, 16);
        let key = TaskKey::measurement(5);
        for v in 0..7 {
            sink.emit_for(key, count(v));
        }
        let log = sink.flush();
        assert_eq!(log.tasks.len(), 1);
        assert_eq!(log.tasks[0].first_seq, 4);
        assert_eq!(log.tasks[0].events, vec![count(4), count(5), count(6)]);
        assert_eq!(log.events_emitted, 7);
    }

    #[test]
    fn flush_truncates_to_smallest_task_keys() {
        let sink = TraceSink::with_bounds(8, 2);
        for id in [9, 3, 7, 1] {
            sink.emit_for(TaskKey::measurement(id), count(id));
        }
        let log = sink.flush();
        let keys: Vec<TaskKey> = log.tasks.iter().map(|t| t.key).collect();
        assert_eq!(keys, vec![TaskKey::measurement(1), TaskKey::measurement(3)]);
        assert_eq!(log.tasks_truncated, 2);
        assert_eq!(log.events_emitted, 4);
    }

    #[test]
    fn span_emits_enter_and_exit_in_order() {
        let sink = TraceSink::enabled();
        {
            let _span = sink.span(StageId::Screening);
            sink.emit(count(1));
        }
        let log = sink.flush();
        assert_eq!(
            log.tasks[0].events,
            vec![
                TraceEvent::Enter {
                    stage: StageId::Screening
                },
                count(1),
                TraceEvent::Exit {
                    stage: StageId::Screening
                },
            ]
        );
    }

    #[test]
    fn failures_accumulate_only_when_enabled() {
        let sink = TraceSink::enabled();
        sink.mark_failure();
        sink.mark_failure();
        assert_eq!(sink.failures(), 2);
    }
}
