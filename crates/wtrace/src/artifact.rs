//! The `wimi-trace/1` JSONL artifact: rendering a flushed [`TraceLog`]
//! to text and parsing/validating artifacts back.
//!
//! Layout (one JSON object per line):
//!
//! ```text
//! {"schema":"wimi-trace/1","tasks":3,"events":41,"events_emitted":41,"failures":0,"tasks_truncated":0}
//! {"task":"run","seq":0,"ev":"count","counter":"captures_taken","delta":1}
//! ...
//! {"obs":{...embedded wimi-obs/1 snapshot...}}
//! ```
//!
//! Every field is written in a fixed order with fixed formatting, so a
//! deterministic [`TraceLog`] renders to byte-identical text — `diff`
//! between `WIMI_THREADS` settings is a plain string comparison.

use std::fmt::Write as _;

use wimi_obs::json::{self, Json};
use wimi_obs::{CounterId, IssueId, StageId};

use crate::event::{Ctx, TraceEvent};
use crate::sink::TraceLog;

/// Schema identifier stamped into every artifact header.
pub const SCHEMA: &str = "wimi-trace/1";

/// Parsed header line of an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Task streams in the artifact.
    pub tasks: u64,
    /// Event lines in the artifact.
    pub events: u64,
    /// Emissions attempted at the sink (≥ `events` when rings dropped).
    pub events_emitted: u64,
    /// Hard measurement failures marked on the sink.
    pub failures: u64,
    /// Task streams cut by the flush bound.
    pub tasks_truncated: u64,
}

/// One parsed event line.
#[derive(Debug, Clone, PartialEq)]
pub struct EventLine {
    /// 1-based line number in the artifact.
    pub line_no: usize,
    /// Task label (e.g. `"meas:1042"`).
    pub task: String,
    /// Per-task logical clock value.
    pub seq: u64,
    /// Event type name.
    pub ev: String,
    /// The full parsed object, for detail fields.
    pub value: Json,
}

/// Campaign provenance stamped into a per-cell artifact header by the
/// campaign runner, so any cell artifact names the campaign it came from
/// and the derived seed that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTag {
    /// Campaign name (as declared in the `.campaign` file).
    pub campaign: String,
    /// Cell index in campaign expansion order.
    pub cell: u64,
    /// The cell's derived root seed.
    pub cell_seed: u64,
}

/// The canonical artifact file name of one campaign cell:
/// `<campaign>-cell-<index, zero-padded to 4>.jsonl`.
pub fn cell_artifact_name(campaign: &str, cell: u64) -> String {
    format!("{campaign}-cell-{cell:04}.jsonl")
}

/// A parsed and semantically validated artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The header line.
    pub header: Header,
    /// Campaign provenance, when the artifact was emitted by a campaign
    /// run (`None` for plain traced experiments).
    pub campaign: Option<CampaignTag>,
    /// All event lines, artifact order.
    pub events: Vec<EventLine>,
    /// The embedded observability snapshot (`Json::Null` when absent).
    pub obs: Json,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_ctx(out: &mut String, ctx: &Ctx) {
    if let Some(p) = ctx.packet {
        let _ = write!(out, ",\"packet\":{p}");
    }
    if let Some(s) = ctx.subcarrier {
        let _ = write!(out, ",\"subcarrier\":{s}");
    }
    if let Some(a) = ctx.antenna {
        let _ = write!(out, ",\"antenna\":{a}");
    }
    if let Some((a, b)) = ctx.pair {
        let _ = write!(out, ",\"pair_a\":{a},\"pair_b\":{b}");
    }
}

fn write_event(out: &mut String, task: &str, seq: u64, ev: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"task\":\"{task}\",\"seq\":{seq},\"ev\":\"{}\"",
        ev.name()
    );
    match ev {
        TraceEvent::Enter { stage } | TraceEvent::Exit { stage } => {
            let _ = write!(out, ",\"stage\":\"{}\"", stage.name());
        }
        TraceEvent::Count { counter, delta } => {
            let _ = write!(out, ",\"counter\":\"{}\",\"delta\":{delta}", counter.name());
        }
        TraceEvent::Issue { issue, count, ctx } => {
            let _ = write!(out, ",\"issue\":\"{}\",\"count\":{count}", issue.name());
            write_ctx(out, ctx);
        }
        TraceEvent::Salvage { action, count } => {
            let _ = write!(out, ",\"action\":\"{}\",\"count\":{count}", esc(action));
        }
        TraceEvent::Attempt { attempt, max } => {
            let _ = write!(out, ",\"attempt\":{attempt},\"max\":{max}");
        }
        TraceEvent::RetriesExhausted { attempts } => {
            let _ = write!(out, ",\"attempts\":{attempts}");
        }
        TraceEvent::Feature {
            pairs,
            gamma_min,
            gamma_max,
            dispersion,
        } => {
            let _ = write!(
                out,
                ",\"pairs\":{pairs},\"gamma_min\":{gamma_min},\"gamma_max\":{gamma_max}"
            );
            if dispersion.is_finite() {
                let _ = write!(out, ",\"dispersion\":{dispersion:.6}");
            } else {
                out.push_str(",\"dispersion\":null");
            }
        }
        TraceEvent::Failed { stage, issue } => {
            let _ = write!(
                out,
                ",\"stage\":\"{}\",\"issue\":\"{}\"",
                stage.name(),
                issue.name()
            );
        }
        TraceEvent::SvmMachine {
            class_a,
            class_b,
            rounds,
        } => {
            let _ = write!(
                out,
                ",\"class_a\":{class_a},\"class_b\":{class_b},\"rounds\":{rounds}"
            );
        }
    }
    out.push_str("}\n");
}

/// Renders a flushed log to `wimi-trace/1` JSONL text. `obs_json`, when
/// given, must be a `wimi-obs/1` snapshot export; it is compacted onto
/// the final line. Equal logs render to byte-identical text.
// wlint: artifact
pub fn render(log: &TraceLog, obs_json: Option<&str>) -> String {
    render_cell(log, obs_json, None)
}

/// Like [`render`], with campaign provenance appended to the header when
/// `tag` is given. [`render`] is `render_cell(log, obs, None)`.
// wlint: artifact
pub fn render_cell(log: &TraceLog, obs_json: Option<&str>, tag: Option<&CampaignTag>) -> String {
    let total_events: usize = log.tasks.iter().map(|t| t.events.len()).sum();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{SCHEMA}\",\"tasks\":{},\"events\":{},\"events_emitted\":{},\"failures\":{},\"tasks_truncated\":{}",
        log.tasks.len(),
        total_events,
        log.events_emitted,
        log.failures,
        log.tasks_truncated
    );
    if let Some(tag) = tag {
        let _ = write!(
            out,
            ",\"campaign\":\"{}\",\"cell\":{},\"cell_seed\":{}",
            esc(&tag.campaign),
            tag.cell,
            tag.cell_seed
        );
    }
    out.push_str("}\n");
    for stream in &log.tasks {
        let label = stream.key.to_string();
        for (i, ev) in stream.events.iter().enumerate() {
            write_event(&mut out, &label, stream.first_seq + i as u64, ev);
        }
    }
    match obs_json {
        Some(snapshot) => {
            let _ = writeln!(out, "{{\"obs\":{}}}", json::compact(snapshot));
        }
        None => out.push_str("{\"obs\":null}\n"),
    }
    out
}

fn get_u64(obj: &Json, key: &str, what: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: \"{key}\" must be a non-negative integer"))
}

fn get_str<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: \"{key}\" must be a string"))
}

fn is_number(v: Option<&Json>) -> bool {
    matches!(v, Some(Json::Num { .. }))
}

fn valid_stage(name: &str) -> bool {
    StageId::ALL.iter().any(|s| s.name() == name)
}

fn valid_counter(name: &str) -> bool {
    CounterId::ALL.iter().any(|c| c.name() == name)
}

fn valid_issue(name: &str) -> bool {
    IssueId::ALL.iter().any(|i| i.name() == name)
}

fn check_event_fields(line: &EventLine) -> Result<(), String> {
    let what = format!("line {}", line.line_no);
    let v = &line.value;
    match line.ev.as_str() {
        "enter" | "exit" | "failed" => {
            let stage = get_str(v, "stage", &what)?;
            if !valid_stage(stage) {
                return Err(format!("{what}: unknown stage \"{stage}\""));
            }
            if line.ev == "failed" {
                let issue = get_str(v, "issue", &what)?;
                if !valid_issue(issue) {
                    return Err(format!("{what}: unknown issue \"{issue}\""));
                }
            }
        }
        "count" => {
            let counter = get_str(v, "counter", &what)?;
            if !valid_counter(counter) {
                return Err(format!("{what}: unknown counter \"{counter}\""));
            }
            get_u64(v, "delta", &what)?;
        }
        "issue" => {
            let issue = get_str(v, "issue", &what)?;
            if !valid_issue(issue) {
                return Err(format!("{what}: unknown issue \"{issue}\""));
            }
            get_u64(v, "count", &what)?;
        }
        "salvage" => {
            get_str(v, "action", &what)?;
            get_u64(v, "count", &what)?;
        }
        "attempt" => {
            get_u64(v, "attempt", &what)?;
            get_u64(v, "max", &what)?;
        }
        "retries_exhausted" => {
            get_u64(v, "attempts", &what)?;
        }
        "feature" => {
            get_u64(v, "pairs", &what)?;
            for key in ["gamma_min", "gamma_max"] {
                if !is_number(v.get(key)) {
                    return Err(format!("{what}: \"{key}\" must be a number"));
                }
            }
            match v.get("dispersion") {
                Some(Json::Num { .. } | Json::Null) => {}
                _ => return Err(format!("{what}: \"dispersion\" must be a number or null")),
            }
        }
        "svm_machine" => {
            get_u64(v, "class_a", &what)?;
            get_u64(v, "class_b", &what)?;
            get_u64(v, "rounds", &what)?;
        }
        other => {
            return Err(format!(
                "{what}: unknown event type \"{other}\" (expected one of {:?})",
                TraceEvent::NAMES
            ))
        }
    }
    Ok(())
}

/// Parses and fully validates a `wimi-trace/1` artifact: header schema
/// and counts, per-line structure, known stage/counter/issue names,
/// per-task logical-clock continuity, and the embedded snapshot.
///
/// Truncated input and a mismatched schema version each produce a
/// distinct one-line message, mirroring the `wimi-obs` validator.
pub fn parse_and_validate(text: &str) -> Result<Artifact, String> {
    let mut lines = text.lines().enumerate();
    let Some((_, header_line)) = lines.next() else {
        return Err("truncated artifact: empty input (no header line)".into());
    };
    let header_val = json::parse(header_line).map_err(|e| format!("header line: {e}"))?;
    match header_val.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return Err(format!(
                "schema version mismatch: artifact declares \"{s}\" but this tool understands \"{SCHEMA}\""
            ))
        }
        None => return Err(format!("header line: \"schema\" must be the string \"{SCHEMA}\"")),
    }
    let header = Header {
        tasks: get_u64(&header_val, "tasks", "header")?,
        events: get_u64(&header_val, "events", "header")?,
        events_emitted: get_u64(&header_val, "events_emitted", "header")?,
        failures: get_u64(&header_val, "failures", "header")?,
        tasks_truncated: get_u64(&header_val, "tasks_truncated", "header")?,
    };
    let campaign = match header_val.get("campaign") {
        None => None,
        Some(_) => Some(CampaignTag {
            campaign: get_str(&header_val, "campaign", "header")?.to_string(),
            cell: get_u64(&header_val, "cell", "header")?,
            cell_seed: get_u64(&header_val, "cell_seed", "header")?,
        }),
    };

    let mut events: Vec<EventLine> = Vec::new();
    let mut obs: Option<Json> = None;
    for (idx, line) in lines {
        let line_no = idx + 1;
        if obs.is_some() {
            return Err(format!(
                "line {line_no}: data after the final {{\"obs\": ...}} line"
            ));
        }
        let value = json::parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if let Some(obs_val) = value.get("obs") {
            obs = Some(obs_val.clone());
            continue;
        }
        let what = format!("line {line_no}");
        let task = get_str(&value, "task", &what)?.to_string();
        let seq = get_u64(&value, "seq", &what)?;
        let ev = get_str(&value, "ev", &what)?.to_string();
        events.push(EventLine {
            line_no,
            task,
            seq,
            ev,
            value,
        });
    }
    let Some(obs) = obs else {
        return Err("truncated artifact: missing the final {\"obs\": ...} line".into());
    };

    for line in &events {
        check_event_fields(line)?;
    }

    // Logical-clock continuity: within a task's (contiguous) block, seq
    // advances by exactly 1; a task must not reappear after its block.
    let mut closed: Vec<&str> = Vec::new();
    let mut current: Option<(&str, u64)> = None;
    for line in &events {
        match current {
            Some((task, last_seq)) if task == line.task => {
                if line.seq != last_seq + 1 {
                    return Err(format!(
                        "line {}: task \"{}\" seq jumps {} -> {} (logical clock must advance by 1)",
                        line.line_no, line.task, last_seq, line.seq
                    ));
                }
                current = Some((task, line.seq));
            }
            other => {
                if let Some((task, _)) = other {
                    closed.push(task);
                }
                if closed.contains(&line.task.as_str()) {
                    return Err(format!(
                        "line {}: task \"{}\" reappears after its block ended",
                        line.line_no, line.task
                    ));
                }
                current = Some((&line.task, line.seq));
            }
        }
    }
    let task_count = closed.len() + usize::from(current.is_some());
    if events.len() as u64 != header.events {
        return Err(format!(
            "header declares {} events but the artifact has {}",
            header.events,
            events.len()
        ));
    }
    if task_count as u64 != header.tasks {
        return Err(format!(
            "header declares {} tasks but the artifact has {task_count}",
            header.tasks
        ));
    }
    if header.events_emitted < header.events {
        return Err(format!(
            "header events_emitted {} < events {} (rings can only drop, not invent)",
            header.events_emitted, header.events
        ));
    }

    if !matches!(obs, Json::Null) {
        wimi_obs::validate_value(&obs).map_err(|e| format!("embedded obs snapshot: {e}"))?;
    }

    Ok(Artifact {
        header,
        campaign,
        events,
        obs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskKey;
    use crate::sink::TraceSink;
    use wimi_obs::Recorder;

    fn sample_log() -> TraceLog {
        let sink = TraceSink::enabled();
        {
            let _span = sink.span(StageId::Capture);
            sink.emit(TraceEvent::Count {
                counter: CounterId::CapturesTaken,
                delta: 1,
            });
        }
        {
            let _scope = crate::sink::task_scope(TaskKey::measurement(11));
            sink.emit(TraceEvent::Attempt { attempt: 1, max: 4 });
            sink.emit(TraceEvent::Issue {
                issue: IssueId::DeadAntenna,
                count: 1,
                ctx: Ctx::pair(0, 2),
            });
            sink.emit(TraceEvent::Salvage {
                action: "drop_dead_antenna",
                count: 1,
            });
            sink.emit(TraceEvent::Feature {
                pairs: 3,
                gamma_min: -1,
                gamma_max: 0,
                dispersion: 0.034,
            });
        }
        {
            let _scope = crate::sink::task_scope(TaskKey::svm_machine(0, 1));
            sink.emit(TraceEvent::SvmMachine {
                class_a: 0,
                class_b: 1,
                rounds: 12,
            });
        }
        sink.flush()
    }

    #[test]
    fn render_then_validate_roundtrips() {
        let obs = Recorder::enabled().snapshot().to_json();
        let text = render(&sample_log(), Some(&obs));
        let artifact = parse_and_validate(&text).unwrap();
        assert_eq!(artifact.header.tasks, 3);
        assert_eq!(artifact.header.events, 8);
        assert_eq!(artifact.header.events_emitted, 8);
        assert!(!matches!(artifact.obs, Json::Null));
    }

    #[test]
    fn render_without_obs_embeds_null() {
        let text = render(&sample_log(), None);
        let artifact = parse_and_validate(&text).unwrap();
        assert!(matches!(artifact.obs, Json::Null));
    }

    #[test]
    fn equal_logs_render_identically() {
        let obs = Recorder::enabled().snapshot().to_json();
        assert_eq!(
            render(&sample_log(), Some(&obs)),
            render(&sample_log(), Some(&obs))
        );
    }

    #[test]
    fn validator_flags_schema_mismatch_with_one_line_message() {
        let text = render(&sample_log(), None).replace("wimi-trace/1", "wimi-trace/2");
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("schema version mismatch"), "{err}");
        assert!(err.contains("wimi-trace/2"), "{err}");
        assert!(!err.contains('\n'), "{err}");
    }

    #[test]
    fn validator_flags_truncated_artifact() {
        let full = render(&sample_log(), None);
        // Cut off the trailing obs line entirely.
        let without_obs: String = full
            .lines()
            .filter(|l| !l.starts_with("{\"obs\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse_and_validate(&without_obs).unwrap_err();
        assert!(err.starts_with("truncated artifact"), "{err}");
        // Cut mid-line (after `{"obs":`): the JSON parser reports
        // truncation because input ends where a value must start.
        let cut = &full[..full.len() - 6];
        let err = parse_and_validate(cut).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        assert!(parse_and_validate("").is_err());
    }

    #[test]
    fn validator_flags_seq_gaps_and_unknown_names() {
        let good = render(&sample_log(), None);
        let gap = good.replacen(
            "\"seq\":1,\"ev\":\"count\"",
            "\"seq\":7,\"ev\":\"count\"",
            1,
        );
        let err = parse_and_validate(&gap).unwrap_err();
        assert!(err.contains("logical clock"), "{err}");
        let bad_stage = good.replacen("\"stage\":\"capture\"", "\"stage\":\"warp\"", 1);
        assert!(parse_and_validate(&bad_stage).is_err());
        let bad_ev = good.replacen("\"ev\":\"attempt\"", "\"ev\":\"attack\"", 1);
        assert!(parse_and_validate(&bad_ev).is_err());
    }

    #[test]
    fn validator_checks_header_counts() {
        let good = render(&sample_log(), None);
        let bad = good.replacen("\"events\":8", "\"events\":9", 1);
        let err = parse_and_validate(&bad).unwrap_err();
        assert!(err.contains("declares 9 events"), "{err}");
        let bad = good.replacen("\"tasks\":3", "\"tasks\":2", 1);
        assert!(parse_and_validate(&bad).is_err());
    }

    #[test]
    fn campaign_tag_roundtrips_through_header() {
        let tag = CampaignTag {
            campaign: "matrix".to_owned(),
            cell: 17,
            cell_seed: 0xDEAD_BEEF,
        };
        let text = render_cell(&sample_log(), None, Some(&tag));
        let artifact = parse_and_validate(&text).unwrap();
        assert_eq!(artifact.campaign, Some(tag));
        // Plain renders carry no tag, and parse as such.
        let plain = parse_and_validate(&render(&sample_log(), None)).unwrap();
        assert_eq!(plain.campaign, None);
        // A tag present without its cell fields is rejected.
        let bad = text.replacen(",\"cell\":17", "", 1);
        let err = parse_and_validate(&bad).unwrap_err();
        assert!(err.contains("cell"), "{err}");
        assert!(!err.contains('\n'), "{err}");
    }

    #[test]
    fn cell_artifact_names_are_zero_padded() {
        assert_eq!(cell_artifact_name("matrix", 7), "matrix-cell-0007.jsonl");
        assert_eq!(cell_artifact_name("m", 12345), "m-cell-12345.jsonl");
    }

    #[test]
    fn validator_checks_embedded_snapshot() {
        let obs = Recorder::enabled().snapshot().to_json();
        let text = render(&sample_log(), Some(&obs)).replace("wimi-obs/1", "wimi-obs/3");
        let err = parse_and_validate(&text).unwrap_err();
        assert!(err.contains("embedded obs snapshot"), "{err}");
        assert!(err.contains("wimi-obs/3"), "{err}");
    }
}
