//! # wimi-trace
//!
//! A deterministic flight-recorder event layer on top of `wimi-obs`.
//!
//! Where a `wimi_obs::Recorder` keeps order-independent aggregates, a
//! [`TraceSink`] keeps *ordered* per-task event streams — which packet
//! was dropped, which antenna pair failed, which retry attempt gave up —
//! in bounded ring buffers, and still renders byte-identical artifacts
//! under any `WIMI_THREADS` setting.
//!
//! ## How determinism survives ordering
//!
//! Wall-clock timestamps and global sequence numbers are both
//! schedule-dependent, so neither appears anywhere. Instead:
//!
//! * every event belongs to a **task** with a deterministic identity
//!   ([`TaskKey`]): the run itself, one measurement (keyed by its seed),
//!   or one SVM machine (keyed by its class pair);
//! * within a task, events carry a monotone **logical clock** (`seq`),
//!   assigned in emission order — and each task runs entirely on one
//!   worker thread of the deterministic fan-out, so that order is fixed;
//! * the artifact orders events by `(task, seq)`, never by arrival.
//!
//! The thread-local current task is installed with [`task_scope`] at the
//! top of each fan-out job. Nested fan-outs do *not* inherit it, so code
//! inside an inner `par::map` must stay silent and let the caller emit
//! per-item events after the join (in deterministic item order).
//!
//! ## Artifact
//!
//! [`artifact::render`] writes the `wimi-trace/1` JSONL format: a header
//! line, one line per event, and a final line embedding the run's
//! `wimi-obs/1` snapshot. [`artifact::parse_and_validate`] checks the
//! whole contract; [`analyze`] adds summaries, first-divergence diffing
//! and work-counter budget gates. The `wimi-trace` binary exposes all of
//! it as `validate` / `summary` / `diff` / `budget` subcommands.
//!
//! ## Example
//!
//! ```
//! use wimi_trace::{task_scope, TaskKey, TraceEvent, TraceSink};
//! use wimi_obs::CounterId;
//!
//! let sink = TraceSink::enabled();
//! {
//!     let _task = task_scope(TaskKey::measurement(42));
//!     sink.emit(TraceEvent::Count {
//!         counter: CounterId::PacketsKept,
//!         delta: 38,
//!     });
//! }
//! let text = wimi_trace::artifact::render(&sink.flush(), None);
//! wimi_trace::artifact::parse_and_validate(&text).unwrap();
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod artifact;
pub mod event;
pub mod sink;

pub use event::{Ctx, TaskKey, TraceEvent};
pub use sink::{task_scope, TaskScope, TraceLog, TraceSink, TraceSpan};
