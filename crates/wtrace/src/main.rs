//! The `wimi-trace` analyzer binary.
//!
//! ```text
//! wimi-trace validate <trace.jsonl>          # schema + invariants, exit 1 on any violation
//! wimi-trace summary  <trace.jsonl>          # deterministic human summary
//! wimi-trace diff     <a.jsonl> <b.jsonl>    # exit 0 iff byte-identical; else first divergence
//! wimi-trace budget   <bench.json> <trace.jsonl>  # gate work counters against committed budgets
//! ```
//!
//! Exit codes: 0 success, 1 check failed, 2 usage or I/O error.

use std::process::ExitCode;

use wimi_trace::analyze::{self, DiffOutcome};
use wimi_trace::artifact;

const USAGE: &str =
    "usage: wimi-trace <validate FILE | summary FILE | diff A B | budget BENCH TRACE>";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().map(String::as_str);
    match (cmd, args.len()) {
        (Some("validate"), 2) => {
            let text = read(&args[1])?;
            match artifact::parse_and_validate(&text) {
                Ok(a) => {
                    println!(
                        "ok: {} tasks, {} events, {} failures",
                        a.header.tasks, a.header.events, a.header.failures
                    );
                    Ok(ExitCode::SUCCESS)
                }
                Err(e) => {
                    eprintln!("invalid: {e}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        (Some("summary"), 2) => {
            let text = read(&args[1])?;
            let report = analyze::summary(&text).map_err(|e| format!("{}: {e}", args[1]))?;
            print!("{report}");
            Ok(ExitCode::SUCCESS)
        }
        (Some("diff"), 3) => {
            let a = read(&args[1])?;
            let b = read(&args[2])?;
            match analyze::diff(&a, &b) {
                DiffOutcome::Identical => {
                    println!("identical: {} == {}", args[1], args[2]);
                    Ok(ExitCode::SUCCESS)
                }
                DiffOutcome::Diverged { report, .. } => {
                    eprint!("{report}");
                    Ok(ExitCode::FAILURE)
                }
            }
        }
        (Some("budget"), 3) => {
            let bench = read(&args[1])?;
            let trace = read(&args[2])?;
            let rows =
                analyze::check_budgets(&bench, &trace).map_err(|e| format!("budget check: {e}"))?;
            print!("{}", analyze::budget_table(&rows));
            if rows.iter().all(|r| r.ok) {
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!(
                    "budget check failed: deterministic work counters exceed {}",
                    args[1]
                );
                Ok(ExitCode::FAILURE)
            }
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
