//! # wimi-bench
//!
//! Criterion benchmarks for the WiMi pipeline. Run with
//! `cargo bench -p wimi-bench`. One benchmark group exists per pipeline
//! stage plus per-figure workload groups (see `benches/pipeline.rs`).

/// Benchmark fixture helpers shared by the bench targets.
pub mod fixtures {
    use wimi_phy::csi::{CsiCapture, CsiSource};
    use wimi_phy::material::Liquid;
    use wimi_phy::scenario::{Scenario, Simulator};

    /// A deterministic baseline/target capture pair for benchmarking.
    pub fn capture_pair(packets: usize) -> (CsiCapture, CsiCapture) {
        let mut sim = Simulator::new(Scenario::builder().build(), 42);
        let baseline = sim.capture(packets);
        sim.set_liquid(Some(Liquid::Milk.into()));
        let target = sim.capture(packets);
        (baseline, target)
    }

    /// A noisy amplitude series for denoiser benchmarks.
    pub fn noisy_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                1.0 + 0.2 * (0.05 * t).sin()
                    + if i % 17 == 0 { 0.5 } else { 0.0 }
                    + 0.02 * (3.7 * t).sin()
            })
            .collect()
    }
}
