//! Writes `BENCH_PR5.json` at the repo root: wall-clock timings of the
//! hot pipeline stages (cached vs forced-recompute simulator, 1 vs 4
//! worker threads) plus the `work_budgets` section — deterministic work
//! counters of the shared trace campaign that `wimi-trace budget` gates
//! CI against. The budgets are schedule-independent, so they hold
//! exactly on any host; only the `*_s` timings vary.
//!
//! Run from the workspace root with
//! `cargo run --release -p wimi-bench --bin bench_summary`.
//! JSON is hand-rolled because the workspace deliberately has no serde
//! dependency.

use std::time::Instant;
use wimi_experiments::harness::{run_identification, Material, RunOptions};
use wimi_experiments::trace::{render_artifact, trace_campaign};
use wimi_experiments::Effort;
use wimi_phy::csi::CsiSource;
use wimi_phy::material::Liquid;
use wimi_phy::scenario::{Scenario, Simulator};

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn json_field(out: &mut String, indent: &str, key: &str, value: f64, last: bool) {
    out.push_str(&format!(
        "{indent}\"{key}\": {value:.6}{}\n",
        if last { "" } else { "," }
    ));
}

fn main() {
    let packets = 100usize;
    let capture_runs = 30usize;

    // Stage 1: simulator capture, cached vs forced-recompute.
    let mut sim = Simulator::new(Scenario::builder().build(), 7);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let cached = time_median(capture_runs, || {
        std::hint::black_box(sim.capture(packets));
    });
    let uncached = time_median(capture_runs, || {
        for _ in 0..packets {
            sim.invalidate_caches();
            std::hint::black_box(sim.packet());
        }
    });

    // Stage 2: identification runs, 1 vs 4 worker threads, on the paper's
    // ten-liquid lab preset scaled down to bench-friendly trial counts.
    let materials: Vec<Material> = wimi_experiments::harness::paper_liquids();
    let run_with_threads = |threads: usize| -> f64 {
        std::env::set_var("WIMI_THREADS", threads.to_string());
        let t = time_median(3, || {
            let opts = RunOptions {
                n_train: 3,
                n_test: 2,
                packets: 10,
                ..RunOptions::default()
            };
            std::hint::black_box(run_identification(&materials, &opts).accuracy());
        });
        std::env::remove_var("WIMI_THREADS");
        t
    };
    let ident_1 = run_with_threads(1);
    let ident_4 = run_with_threads(4);

    // Deterministic work budgets: the exact counters the shared trace
    // campaign produces today. `wimi-trace budget` fails CI if any run
    // ever does MORE work than this — a silent perf/coverage regression.
    let campaign = trace_campaign(Effort::quick());
    render_artifact(&campaign).expect("trace artifact must self-validate");
    let snap = campaign.recorder.snapshot();
    let budget = |name: &str| -> u64 {
        snap.counter(name)
            .unwrap_or_else(|| panic!("campaign snapshot has no counter {name}"))
    };
    let budgets: Vec<(&str, u64)> = vec![
        ("trace_events", campaign.sink.events_emitted()),
        ("captures_taken", budget("captures_taken")),
        ("packets_simulated", budget("packets_simulated")),
        ("measurements_attempted", budget("measurements_attempted")),
        ("pairs_resolved", budget("pairs_resolved")),
        ("svm_machines_trained", budget("svm_machines_trained")),
    ];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"packets_per_capture\": {packets},\n"));
    out.push_str(&format!("  \"host_cpus\": {cores},\n"));
    out.push_str("  \"simulator_capture\": {\n");
    json_field(&mut out, "    ", "cached_s", cached, false);
    json_field(&mut out, "    ", "uncached_s", uncached, false);
    json_field(&mut out, "    ", "speedup", uncached / cached, true);
    out.push_str("  },\n");
    out.push_str("  \"run_identification_10_liquids\": {\n");
    json_field(&mut out, "    ", "threads_1_s", ident_1, false);
    json_field(&mut out, "    ", "threads_4_s", ident_4, false);
    json_field(&mut out, "    ", "speedup", ident_1 / ident_4, true);
    out.push_str("  },\n");
    out.push_str("  \"work_budgets\": {\n");
    for (i, (name, value)) in budgets.iter().enumerate() {
        let comma = if i + 1 == budgets.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  }\n}\n");

    std::fs::write("BENCH_PR5.json", &out).expect("write BENCH_PR5.json");
    print!("{out}");
}
