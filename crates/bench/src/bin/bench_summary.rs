//! Writes `BENCH_PR6.json` at the repo root: wall-clock timings of the
//! hot pipeline stages (cached vs forced-recompute simulator, 1 vs 4
//! worker threads), the `throughput` section (measurements/second plus
//! steady-state allocation counts from a counting global allocator), and
//! the `work_budgets` section — deterministic work counters of the shared
//! trace campaign that `wimi-trace budget` gates CI against. The budgets
//! and allocation counts are schedule-independent, so they hold exactly
//! on any host; only the `*_s` timings and `meas_per_s_*` rates vary.
//!
//! Run from the workspace root with
//! `cargo run --release -p wimi-bench --bin bench_summary`.
//!
//! `--check [path]` re-measures the schedule-independent numbers and
//! fails (exit 1) if the workspace now allocates more in steady state
//! than the committed artifact records, or if the 4-thread fan-out
//! speedup collapses on a multi-core host. CI runs this gate on every
//! push.
//!
//! JSON is hand-rolled because the workspace deliberately has no serde
//! dependency.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wimi_bench::fixtures::capture_pair;
use wimi_core::{WiMi, WiMiConfig};
use wimi_experiments::harness::{run_identification, Material, RunOptions};
use wimi_experiments::trace::{render_artifact, trace_campaign};
use wimi_experiments::Effort;
use wimi_phy::csi::CsiSource;
use wimi_phy::material::Liquid;
use wimi_phy::scenario::{Scenario, Simulator};

/// A pass-through allocator that counts heap acquisitions (`alloc` +
/// `realloc`), so the summary can record how many allocations the hot
/// path performs in steady state. Counting is the *only* extra work —
/// all placement decisions stay with the system allocator.
struct CountingAlloc;

/// Total `alloc` + `realloc` calls since process start.
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

#[allow(unsafe_code)] // GlobalAlloc is an unsafe trait; this impl only delegates to System.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation count of one invocation of `f`.
fn count_allocs<F: FnMut()>(mut f: F) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn json_field(out: &mut String, indent: &str, key: &str, value: f64, last: bool) {
    out.push_str(&format!(
        "{indent}\"{key}\": {value:.6}{}\n",
        if last { "" } else { "," }
    ));
}

/// Extracts `"key": <number>` from hand-rolled JSON text. Good enough for
/// the flat artifacts this binary writes; not a general parser.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The bench identification workload: the paper's ten-liquid lab preset
/// scaled down to bench-friendly trial counts. Returns median seconds per
/// full run under `threads` workers.
fn ident_seconds(materials: &[Material], threads: usize) -> f64 {
    wimi_core::par::set_thread_override(Some(threads));
    let t = time_median(3, || {
        let opts = RunOptions {
            n_train: 3,
            n_test: 2,
            packets: 10,
            ..RunOptions::default()
        };
        std::hint::black_box(run_identification(materials, &opts).accuracy());
    });
    wimi_core::par::set_thread_override(None);
    t
}

/// Steady-state allocation counts of the two hot-path entry points, under
/// one worker thread so the counts are schedule-independent. The first
/// (warm-up) call grows scratch pools and lazy statics; the measured
/// second call is the steady state the SoA refactor optimises.
fn steady_state_allocs(packets: usize) -> (u64, u64) {
    wimi_core::par::set_thread_override(Some(1));
    let mut sim = Simulator::new(Scenario::builder().build(), 7);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let _warm = sim.capture(packets);
    let capture_allocs = count_allocs(|| {
        std::hint::black_box(sim.capture(packets));
    });

    let wimi = WiMi::new(WiMiConfig::default());
    let (base, tar) = capture_pair(packets);
    let _warm = wimi.measure(&base, &tar);
    let measure_allocs = count_allocs(|| {
        std::hint::black_box(wimi.measure(&base, &tar));
    });
    wimi_core::par::set_thread_override(None);
    (capture_allocs, measure_allocs)
}

/// Measurements per identification run: (train + test) trials × materials.
const BENCH_MEASUREMENTS: usize = 10 * (3 + 2);

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let recorded_capture = json_number(&text, "capture_allocs_steady")
        .ok_or("artifact lacks throughput.capture_allocs_steady")?;
    let recorded_measure = json_number(&text, "measure_allocs_steady")
        .ok_or("artifact lacks throughput.measure_allocs_steady")?;

    let (capture_allocs, measure_allocs) = steady_state_allocs(100);
    // A tenth of headroom absorbs allocator-internal noise without letting
    // a real per-packet allocation regression (hundreds of extra calls)
    // slip through.
    let cap_limit = recorded_capture + (recorded_capture / 10.0).max(8.0);
    let meas_limit = recorded_measure + (recorded_measure / 10.0).max(8.0);
    println!(
        "bench check: capture allocs {capture_allocs} (recorded {recorded_capture}, limit {cap_limit:.0})"
    );
    println!(
        "bench check: measure allocs {measure_allocs} (recorded {recorded_measure}, limit {meas_limit:.0})"
    );
    if capture_allocs as f64 > cap_limit {
        return Err(format!(
            "steady-state capture now allocates {capture_allocs} times (recorded {recorded_capture}); the hot path regressed"
        ));
    }
    if measure_allocs as f64 > meas_limit {
        return Err(format!(
            "steady-state measure now allocates {measure_allocs} times (recorded {recorded_measure}); the hot path regressed"
        ));
    }

    // The fan-out gate needs real cores; a single-CPU host serialises the
    // workers and measures only scheduling overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        let materials: Vec<Material> = wimi_experiments::harness::paper_liquids();
        let t1 = ident_seconds(&materials, 1);
        let t4 = ident_seconds(&materials, 4);
        let speedup = t1 / t4;
        let floor = if cores >= 4 { 1.5 } else { 1.2 };
        println!(
            "bench check: 4-thread fan-out speedup {speedup:.2} (floor {floor}, {cores} cpus)"
        );
        if speedup < floor {
            return Err(format!(
                "4-thread fan-out speedup {speedup:.2} fell below {floor} on a {cores}-cpu host"
            ));
        }
    } else {
        println!("bench check: single-cpu host, fan-out gate skipped");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR6.json");
        if let Err(msg) = check(path) {
            eprintln!("bench check FAILED: {msg}");
            std::process::exit(1);
        }
        println!("bench check OK");
        return;
    }

    let packets = 100usize;
    let capture_runs = 30usize;

    // Stage 1: simulator capture, cached vs forced-recompute.
    let mut sim = Simulator::new(Scenario::builder().build(), 7);
    sim.set_liquid(Some(Liquid::Milk.into()));
    let cached = time_median(capture_runs, || {
        std::hint::black_box(sim.capture(packets));
    });
    let uncached = time_median(capture_runs, || {
        for _ in 0..packets {
            sim.invalidate_caches();
            std::hint::black_box(sim.packet());
        }
    });

    // Stage 2: identification runs, 1 vs 4 worker threads.
    let materials: Vec<Material> = wimi_experiments::harness::paper_liquids();
    let ident_1 = ident_seconds(&materials, 1);
    let ident_4 = ident_seconds(&materials, 4);

    // Stage 3: steady-state allocation counts of the hot entry points.
    let (capture_allocs, measure_allocs) = steady_state_allocs(packets);

    // Deterministic work budgets: the exact counters the shared trace
    // campaign produces today. `wimi-trace budget` fails CI if any run
    // ever does MORE work than this — a silent perf/coverage regression.
    let campaign = trace_campaign(Effort::quick());
    render_artifact(&campaign).expect("trace artifact must self-validate");
    let snap = campaign.recorder.snapshot();
    let budget = |name: &str| -> u64 {
        snap.counter(name)
            .unwrap_or_else(|| panic!("campaign snapshot has no counter {name}"))
    };
    let budgets: Vec<(&str, u64)> = vec![
        ("trace_events", campaign.sink.events_emitted()),
        ("captures_taken", budget("captures_taken")),
        ("packets_simulated", budget("packets_simulated")),
        ("measurements_attempted", budget("measurements_attempted")),
        ("pairs_resolved", budget("pairs_resolved")),
        ("svm_machines_trained", budget("svm_machines_trained")),
    ];

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"packets_per_capture\": {packets},\n"));
    out.push_str(&format!("  \"host_cpus\": {cores},\n"));
    out.push_str("  \"simulator_capture\": {\n");
    json_field(&mut out, "    ", "cached_s", cached, false);
    json_field(&mut out, "    ", "uncached_s", uncached, false);
    json_field(&mut out, "    ", "speedup", uncached / cached, true);
    out.push_str("  },\n");
    out.push_str("  \"run_identification_10_liquids\": {\n");
    json_field(&mut out, "    ", "threads_1_s", ident_1, false);
    json_field(&mut out, "    ", "threads_4_s", ident_4, false);
    json_field(&mut out, "    ", "speedup", ident_1 / ident_4, true);
    out.push_str("  },\n");
    out.push_str("  \"throughput\": {\n");
    out.push_str(&format!(
        "    \"measurements_per_run\": {BENCH_MEASUREMENTS},\n"
    ));
    json_field(
        &mut out,
        "    ",
        "meas_per_s_1t",
        BENCH_MEASUREMENTS as f64 / ident_1,
        false,
    );
    json_field(
        &mut out,
        "    ",
        "meas_per_s_4t",
        BENCH_MEASUREMENTS as f64 / ident_4,
        false,
    );
    json_field(
        &mut out,
        "    ",
        "fanout_speedup_4t",
        ident_1 / ident_4,
        false,
    );
    // The committed PR5 artifact was measured on this same workload, so
    // when present its single-thread time gives the refactor's speedup
    // multiple directly.
    if let Some(pr5) = std::fs::read_to_string("BENCH_PR5.json")
        .ok()
        .and_then(|t| json_number(&t, "threads_1_s"))
    {
        json_field(&mut out, "    ", "pr5_threads_1_s", pr5, false);
        json_field(&mut out, "    ", "speedup_vs_pr5_1t", pr5 / ident_1, false);
    }
    out.push_str(&format!(
        "    \"capture_allocs_steady\": {capture_allocs},\n"
    ));
    out.push_str(&format!(
        "    \"measure_allocs_steady\": {measure_allocs},\n"
    ));
    json_field(
        &mut out,
        "    ",
        "capture_allocs_per_packet",
        capture_allocs as f64 / packets as f64,
        true,
    );
    out.push_str("  },\n");
    out.push_str("  \"work_budgets\": {\n");
    for (i, (name, value)) in budgets.iter().enumerate() {
        let comma = if i + 1 == budgets.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  }\n}\n");

    std::fs::write("BENCH_PR6.json", &out).expect("write BENCH_PR6.json");
    print!("{out}");
}
