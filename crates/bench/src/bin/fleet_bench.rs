//! Writes `BENCH_PR10.json` at the repo root: the fleet-scale serving
//! benchmark. The workload is the default `wimi-serve` synthetic fleet
//! (12 sessions × 5 measurements, two environments, shared model cache);
//! the artifact records measurements/second under 1 and 4 worker threads
//! plus two deterministic budget sections that `wimi-experiments fleet
//! --check` gates CI against: `fleet_budgets` (the run's service totals)
//! and `metrics_budgets` (windowed maxima of the tick-resolved
//! `wimi-metrics/1` telemetry timeline).
//!
//! Run from the workspace root with
//! `cargo run --release -p wimi-bench --bin fleet_bench`.
//!
//! `--check [path]` re-runs the deterministic fleet and fails (exit 1)
//! if any recorded budget is exceeded, or if the 4-thread fan-out
//! speedup collapses on a multi-core host. Timings (`*_per_s`) are
//! informational and never gated — only the schedule-independent totals
//! and the speedup ratio are.

use std::time::Instant;
use wimi_experiments::fleet::{check_fleet_budgets, check_metrics_budgets};
use wimi_serve::{run_fleet, FleetConfig, FleetReport};

/// Median wall-clock seconds of `runs` invocations of `f`.
fn time_median<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The benchmark workload: the default synthetic fleet.
fn bench_fleet() -> FleetReport {
    run_fleet(&FleetConfig::default())
}

/// Median seconds per full fleet run under `threads` workers.
fn fleet_seconds(threads: usize) -> f64 {
    wimi_core::par::set_thread_override(Some(threads));
    let t = time_median(3, || {
        std::hint::black_box(bench_fleet());
    });
    wimi_core::par::set_thread_override(None);
    t
}

/// The deterministic totals recorded as budgets: service accounting plus
/// the work counters that bound training and inference cost.
fn budget_entries(report: &FleetReport) -> Vec<(&'static str, u64)> {
    let counter = |name: &str| -> u64 {
        report
            .counters
            .iter()
            .find(|&&(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    };
    vec![
        ("requests", report.requests),
        ("responses", report.responses),
        ("failed", report.failed),
        ("shed", report.shed),
        ("model_keys", report.model_keys as u64),
        ("queue_peak", report.queue_peak as u64),
        ("captures_taken", counter("captures_taken")),
        ("packets_simulated", counter("packets_simulated")),
        ("measurements_attempted", counter("measurements_attempted")),
        ("serve_batches", counter("serve_batches")),
        ("serve_batched", counter("serve_batched")),
        ("model_cache_misses", counter("model_cache_misses")),
        ("svm_machines_trained", counter("svm_machines_trained")),
    ]
}

/// The windowed telemetry maxima recorded as `metrics_budgets`: per-tick
/// ceilings that CI gates the deterministic timeline against.
fn metrics_budget_entries(report: &FleetReport) -> Vec<(&'static str, u64)> {
    let max_of = |series: &str| -> u64 {
        report
            .timeline
            .aggregate(series)
            .map_or(0, |stats| stats.max)
    };
    vec![
        ("queue_peak", max_of("queue_peak")),
        ("shed", max_of("shed")),
        ("retries_exhausted", max_of("retries_exhausted")),
        ("packets_processed", max_of("packets_processed")),
        ("cache_misses", max_of("cache_misses")),
    ]
}

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = bench_fleet();
    let rows = check_fleet_budgets(&text, &report)?;
    for row in &rows {
        println!(
            "fleet bench check: {} {} (budget {})",
            row.name, row.actual, row.budget
        );
    }
    if let Some(bad) = rows.iter().find(|r| !r.ok) {
        return Err(format!(
            "fleet total {} is {} but the committed budget is {}",
            bad.name, bad.actual, bad.budget
        ));
    }
    let rows = check_metrics_budgets(&text, &report.timeline)?;
    for row in &rows {
        println!(
            "fleet bench check: tick-max {} {} (budget {})",
            row.name, row.actual, row.budget
        );
    }
    if let Some(bad) = rows.iter().find(|r| !r.ok) {
        return Err(format!(
            "timeline tick-max {} is {} but the committed budget is {}",
            bad.name, bad.actual, bad.budget
        ));
    }

    // The fan-out gate needs real cores; a single-CPU host serialises the
    // workers and measures only scheduling overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 2 {
        let t1 = fleet_seconds(1);
        let t4 = fleet_seconds(4);
        let speedup = t1 / t4;
        let floor = if cores >= 4 { 1.3 } else { 1.1 };
        println!(
            "fleet bench check: 4-thread fan-out speedup {speedup:.2} (floor {floor}, {cores} cpus)"
        );
        if speedup < floor {
            return Err(format!(
                "4-thread fleet speedup {speedup:.2} fell below {floor} on a {cores}-cpu host"
            ));
        }
    } else {
        println!("fleet bench check: single-cpu host, fan-out gate skipped");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_PR10.json");
        if let Err(msg) = check(path) {
            eprintln!("fleet bench check FAILED: {msg}");
            std::process::exit(1);
        }
        println!("fleet bench check OK");
        return;
    }

    let report = bench_fleet();
    let measurements = report.requests;
    let t1 = fleet_seconds(1);
    let t4 = fleet_seconds(4);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"host_cpus\": {cores},\n"));
    out.push_str("  \"fleet\": {\n");
    out.push_str(&format!("    \"sessions\": {},\n", report.sessions));
    out.push_str(&format!(
        "    \"measurements_per_session\": {},\n",
        report.measurements
    ));
    out.push_str(&format!("    \"seed\": {}\n", report.seed));
    out.push_str("  },\n");
    out.push_str("  \"throughput\": {\n");
    out.push_str(&format!("    \"measurements_per_run\": {measurements},\n"));
    out.push_str(&format!("    \"threads_1_s\": {t1:.6},\n"));
    out.push_str(&format!("    \"threads_4_s\": {t4:.6},\n"));
    out.push_str(&format!(
        "    \"meas_per_s_1t\": {:.6},\n",
        measurements as f64 / t1
    ));
    out.push_str(&format!(
        "    \"meas_per_s_4t\": {:.6},\n",
        measurements as f64 / t4
    ));
    out.push_str(&format!("    \"fanout_speedup_4t\": {:.6}\n", t1 / t4));
    out.push_str("  },\n");
    out.push_str("  \"fleet_budgets\": {\n");
    let budgets = budget_entries(&report);
    for (i, (name, value)) in budgets.iter().enumerate() {
        let comma = if i + 1 < budgets.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  },\n");
    out.push_str("  \"metrics_budgets\": {\n");
    let budgets = metrics_budget_entries(&report);
    for (i, (name, value)) in budgets.iter().enumerate() {
        let comma = if i + 1 < budgets.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {value}{comma}\n"));
    }
    out.push_str("  }\n");
    out.push_str("}\n");

    let path = "BENCH_PR10.json";
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("fleet_bench: cannot write {path}: {e}");
        std::process::exit(2);
    }
    print!("{out}");
    eprintln!("wrote {path}");
}
