//! Criterion benches: one group per pipeline stage, plus per-figure
//! workload groups matching the evaluation harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wimi_bench::fixtures;
use wimi_core::amplitude::{AmplitudeConfig, AmplitudeRatioProfile};
use wimi_core::phase::PhaseDifferenceProfile;
use wimi_core::{WiMi, WiMiConfig};
use wimi_dsp::filters::{butterworth_filtfilt, median_filter, slide_filter};
use wimi_dsp::wavelet::{correlation_denoise, swt_decompose, Wavelet};
use wimi_experiments::harness::{run_identification, Material, RunOptions};
use wimi_ml::dataset::Dataset;
use wimi_ml::multiclass::MulticlassSvm;
use wimi_ml::svm::SvmParams;
use wimi_phy::csi::CsiSource;
use wimi_phy::scenario::{Scenario, Simulator};

/// Simulator throughput: CSI packet generation (the substrate for every
/// figure's workload). The cached/uncached comparison measures the win
/// from memoising the LoS response and target insertion factors — the
/// uncached variant forces a recompute before every packet, which is what
/// every capture paid before the caches existed.
fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for &packets in &[5usize, 20, 100] {
        group.bench_with_input(BenchmarkId::new("capture", packets), &packets, |b, &n| {
            let mut sim = Simulator::new(Scenario::builder().build(), 7);
            sim.set_liquid(Some(wimi_phy::material::Liquid::Milk.into()));
            b.iter(|| black_box(sim.capture(n)));
        });
        group.bench_with_input(
            BenchmarkId::new("capture_uncached", packets),
            &packets,
            |b, &n| {
                let mut sim = Simulator::new(Scenario::builder().build(), 7);
                sim.set_liquid(Some(wimi_phy::material::Liquid::Milk.into()));
                b.iter(|| {
                    let mut packets_out = Vec::with_capacity(n);
                    for _ in 0..n {
                        sim.invalidate_caches();
                        packets_out.push(sim.packet());
                    }
                    black_box(packets_out)
                });
            },
        );
    }
    group.finish();
}

/// Batch identification: N full (trial × material) measurement pairs
/// through capture, extraction, and classification — the workload
/// `run_identification` fans out over worker threads.
fn bench_batch_identification(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_identification");
    group.sample_size(10);
    let materials = vec![
        Material::catalog(wimi_phy::material::Liquid::PureWater),
        Material::catalog(wimi_phy::material::Liquid::Honey),
        Material::catalog(wimi_phy::material::Liquid::Oil),
    ];
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("run_identification_3x4", threads),
            &threads,
            |b, &t| {
                wimi_core::par::set_thread_override(Some(t));
                b.iter(|| {
                    let opts = RunOptions {
                        n_train: 4,
                        n_test: 2,
                        packets: 10,
                        ..RunOptions::default()
                    };
                    black_box(run_identification(&materials, &opts).accuracy())
                });
                wimi_core::par::set_thread_override(None);
            },
        );
        // Same workload with an enabled recorder: the delta against the
        // variant above is the observability overhead (budget: < 5%).
        group.bench_with_input(
            BenchmarkId::new("run_identification_3x4_recorded", threads),
            &threads,
            |b, &t| {
                wimi_core::par::set_thread_override(Some(t));
                b.iter(|| {
                    let opts = RunOptions {
                        n_train: 4,
                        n_test: 2,
                        packets: 10,
                        recorder: Some(std::sync::Arc::new(wimi_obs::Recorder::enabled())),
                        ..RunOptions::default()
                    };
                    black_box(run_identification(&materials, &opts).accuracy())
                });
                wimi_core::par::set_thread_override(None);
            },
        );
        // Same workload with recorder AND flight-recorder trace sink
        // enabled: the delta against the plain variant is the full
        // observability overhead (budget: < 5%).
        group.bench_with_input(
            BenchmarkId::new("run_identification_3x4_traced", threads),
            &threads,
            |b, &t| {
                wimi_core::par::set_thread_override(Some(t));
                b.iter(|| {
                    let opts = RunOptions {
                        n_train: 4,
                        n_test: 2,
                        packets: 10,
                        recorder: Some(std::sync::Arc::new(wimi_obs::Recorder::enabled())),
                        trace: Some(wimi_trace::TraceSink::enabled()),
                        ..RunOptions::default()
                    };
                    black_box(run_identification(&materials, &opts).accuracy())
                });
                wimi_core::par::set_thread_override(None);
            },
        );
        // Disabled-sink contract: attaching TraceSink::disabled() must
        // emit zero events, so this variant's cost is one branch per
        // emission site over the plain run.
        group.bench_with_input(
            BenchmarkId::new("run_identification_3x4_trace_disabled", threads),
            &threads,
            |b, &t| {
                wimi_core::par::set_thread_override(Some(t));
                b.iter(|| {
                    let sink = wimi_trace::TraceSink::disabled();
                    let opts = RunOptions {
                        n_train: 4,
                        n_test: 2,
                        packets: 10,
                        trace: Some(std::sync::Arc::clone(&sink)),
                        ..RunOptions::default()
                    };
                    let acc = run_identification(&materials, &opts).accuracy();
                    assert_eq!(sink.events_emitted(), 0, "disabled sink must stay silent");
                    black_box(acc)
                });
                wimi_core::par::set_thread_override(None);
            },
        );
    }
    group.finish();
}

/// Fig. 7 workload: the denoiser comparison.
fn bench_denoising(c: &mut Criterion) {
    let series = fixtures::noisy_series(256);
    let mut group = c.benchmark_group("denoising_fig7");
    group.bench_function("median", |b| {
        b.iter(|| black_box(median_filter(&series, 5)))
    });
    group.bench_function("slide", |b| b.iter(|| black_box(slide_filter(&series, 5))));
    group.bench_function("butterworth", |b| {
        b.iter(|| black_box(butterworth_filtfilt(&series, 0.25)))
    });
    group.bench_function("wavelet_correlation", |b| {
        b.iter(|| black_box(correlation_denoise(&series)))
    });
    group.finish();
}

/// Wavelet transform throughput.
fn bench_swt(c: &mut Criterion) {
    let series = fixtures::noisy_series(256);
    let mut group = c.benchmark_group("swt");
    for wavelet in Wavelet::ALL {
        group.bench_with_input(
            BenchmarkId::new("decompose4", wavelet.name()),
            &wavelet,
            |b, &w| b.iter(|| black_box(swt_decompose(&series, w, 4))),
        );
    }
    group.finish();
}

/// Fig. 2/6/12 workload: phase calibration and subcarrier ranking.
fn bench_phase_calibration(c: &mut Criterion) {
    let (base, tar) = fixtures::capture_pair(20);
    let mut group = c.benchmark_group("phase_calibration_fig12");
    group.bench_function("profile", |b| {
        b.iter(|| black_box(PhaseDifferenceProfile::compute(&tar, 0, 1)))
    });
    group.bench_function("rank_subcarriers", |b| {
        let pb = PhaseDifferenceProfile::compute(&base, 0, 1);
        let pt = PhaseDifferenceProfile::compute(&tar, 0, 1);
        b.iter(|| black_box(wimi_core::subcarrier::rank_subcarriers(&pb, &pt)))
    });
    group.finish();
}

/// Fig. 8/14 workload: the amplitude pipeline.
fn bench_amplitude(c: &mut Criterion) {
    let (_, tar) = fixtures::capture_pair(20);
    let mut group = c.benchmark_group("amplitude_fig14");
    group.bench_function("ratio_profile_raw", |b| {
        b.iter(|| {
            black_box(AmplitudeRatioProfile::compute(
                &tar,
                0,
                1,
                &AmplitudeConfig::raw(),
            ))
        })
    });
    group.bench_function("ratio_profile_denoised", |b| {
        b.iter(|| {
            black_box(AmplitudeRatioProfile::compute(
                &tar,
                0,
                1,
                &AmplitudeConfig::default(),
            ))
        })
    });
    group.finish();
}

/// Fig. 9/15 workload: full feature extraction (the per-measurement cost
/// of every identification figure).
fn bench_feature_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("feature_extraction_fig15");
    for &packets in &[5usize, 20] {
        let (base, tar) = fixtures::capture_pair(packets);
        let wimi = WiMi::new(WiMiConfig::default());
        group.bench_with_input(
            BenchmarkId::new("extract_feature", packets),
            &packets,
            |b, _| b.iter(|| black_box(wimi.extract_feature(&base, &tar))),
        );
    }
    group.finish();
}

/// Fig. 15/16 workload: SVM training and prediction on Ω̄-like features.
fn bench_classifier(c: &mut Criterion) {
    // A 10-class, 4-D dataset shaped like the Fig. 15 feature table.
    let mut ds = Dataset::new((0..10).map(|i| format!("c{i}")).collect());
    for class in 0..10usize {
        for trial in 0..20usize {
            let centre = 0.05 + 0.05 * class as f64;
            let x: Vec<f64> = (0..4)
                .map(|d| centre + 0.003 * ((trial * 7 + d * 3) % 11) as f64 / 11.0)
                .collect();
            ds.push(x, class);
        }
    }
    let mut group = c.benchmark_group("classifier_fig15");
    group.sample_size(20);
    group.bench_function("svm_train_10class", |b| {
        b.iter(|| {
            let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
            black_box(MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng))
        })
    });
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let model = MulticlassSvm::train(&ds, &SvmParams::default(), &mut rng);
    group.bench_function("svm_predict", |b| {
        b.iter(|| black_box(model.predict(&[0.21, 0.21, 0.22, 0.21])))
    });
    group.finish();
}

/// End-to-end: one full identification measurement (capture → feature),
/// the unit of work behind Figs. 13–21.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    group.bench_function("measure_and_extract", |b| {
        let wimi = WiMi::new(WiMiConfig::default());
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = Simulator::new(Scenario::builder().build(), seed);
            let base = sim.capture(20);
            sim.set_liquid(Some(wimi_phy::material::Liquid::Milk.into()));
            let tar = sim.capture(20);
            black_box(wimi.extract_feature(&base, &tar))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_batch_identification,
    bench_denoising,
    bench_swt,
    bench_phase_calibration,
    bench_amplitude,
    bench_feature_extraction,
    bench_classifier,
    bench_end_to_end
);
criterion_main!(benches);
