//! Offline stand-in for the subset of the `rand` 0.8 API that the WiMi
//! workspace uses.
//!
//! The build environment has no access to a crates registry, so the real
//! `rand` crate cannot be fetched. This vendored crate re-implements the
//! exact surface the workspace consumes — [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], [`distributions::Distribution`] and
//! [`seq::SliceRandom`] — on top of a xoshiro256++ generator seeded with
//! SplitMix64. Everything is deterministic given a seed, which is all the
//! simulator and training code rely on; no claim of cryptographic quality
//! is made (none is needed here).
//!
//! The generated *streams* differ from the real `rand`'s ChaCha-based
//! `StdRng`, so seeded results differ numerically from builds made against
//! crates.io `rand`. All workspace tests assert physical/statistical
//! properties rather than exact stream values, so this is benign.

/// A source of random 64-bit words. Object-safety is preserved so `&mut R`
/// with `R: Rng + ?Sized` works exactly as with the real crate.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Small, fast, `Clone`, and deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for state initialisation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions and uniform range sampling.
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: `[0, 1)` floats, full-range integers,
    /// fair booleans.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high bits → uniform in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniform range sampling, mirroring `rand::distributions::uniform`.
    pub mod uniform {
        use super::super::RngCore;

        /// A range that can be sampled uniformly.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            ///
            /// # Panics
            ///
            /// Panics if the range is empty.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        impl SampleRange<f64> for std::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng)
            }
        }

        impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng)
            }
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for std::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        // Modulo bias is ≤ span/2^64: irrelevant at the
                        // span sizes used in this workspace.
                        let r = rng.next_u64() as u128 % span;
                        (self.start as i128 + r as i128) as $t
                    }
                }
                impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let r = rng.next_u64() as u128 % span;
                        (lo as i128 + r as i128) as $t
                    }
                }
            )*};
        }
        impl_int_range!(usize, u64, u32, i64, i32);
    }
}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Distribution;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.gen::<f64>()).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.gen::<f64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.gen_range(0..=4u32);
            assert!(j <= 4);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn unsized_rng_works_through_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!((0.0..1.0).contains(&draw(&mut rng)));
    }

    #[test]
    fn standard_distribution_sampling() {
        let mut rng = StdRng::seed_from_u64(8);
        let d = super::distributions::Standard;
        let _: bool = d.sample(&mut rng);
        let _: u64 = d.sample(&mut rng);
        let x: f64 = rng.sample(super::distributions::Standard);
        assert!(x.is_finite());
    }
}
