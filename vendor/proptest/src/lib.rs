//! Offline stand-in for the subset of `proptest` that the WiMi workspace
//! uses.
//!
//! The build environment has no crates-registry access, so the real
//! proptest cannot be fetched. This crate keeps `proptest! {}` test
//! blocks compiling and genuinely exercises them: each property runs
//! [`NUM_CASES`] times against deterministically seeded random inputs
//! drawn from the declared strategies. There is no shrinking and no
//! persisted failure file — a failing case panics with the assertion
//! message, which is enough to reproduce (the input stream is fixed).

/// Number of random cases each property is executed with.
pub const NUM_CASES: usize = 96;

/// Deterministic input generator for property tests (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fresh generator with the fixed test seed.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x57E5_7B0B_57E5_7B0B,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Input strategies.
pub mod strategy {
    use super::TestRng;

    /// Generates values of an input type for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one input.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128) as u128;
                    assert!(span > 0, "cannot sample an empty range");
                    let r = rng.next_u64() as u128 % span;
                    (self.start as i128 + r as i128) as $t
                }
            }
        )*};
    }
    impl_int_strategy!(usize, u64, u32, i64, i32);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy producing `Vec`s of another strategy's values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector strategy with lengths drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each function body runs [`NUM_CASES`] times
/// with inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    ($(#[$meta:meta] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[$meta]
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic();
                for __proptest_case in 0..$crate::NUM_CASES {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let _ = __proptest_case;
                    $body
                }
            }
        )*
    };
}

/// Asserts a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(
            xs in collection::vec(0.0f64..1.0, 3..17),
        ) {
            prop_assert!((3..17).contains(&xs.len()));
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = crate::TestRng::deterministic();
        let mut b = crate::TestRng::deterministic();
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
