//! Offline stand-in for the subset of the `criterion` 0.5 API that the
//! WiMi bench targets use.
//!
//! The build environment has no crates-registry access, so the real
//! criterion cannot be fetched. This crate keeps the bench sources
//! compiling unchanged and produces honest wall-clock measurements:
//! each benchmark is warmed up, then timed over enough iterations to fill
//! a measurement window, and the mean ns/iter is printed as
//! `group/name … time: X`.
//!
//! Differences from real criterion: no statistical outlier analysis, no
//! HTML reports, no saved baselines. `--test` (passed by `cargo test` to
//! `harness = false` bench targets) runs every routine exactly once.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    measurement: Duration,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.last_ns = 0.0;
            return;
        }
        // Warm-up and per-iteration estimate.
        let warmup = Instant::now();
        let mut warm_iters = 0u64;
        while warmup.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let est_ns = (warmup.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);
        let target = self.measurement.as_nanos() as f64;
        let iters = ((target / est_ns).ceil() as u64).clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Builds a driver from the process arguments (`--test`, a name
    /// filter, and criterion CLI flags, which are accepted and ignored).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Flags with a value (e.g. --measurement-time 5).
                    if args.peek().is_some_and(|v| !v.starts_with("--")) {
                        args.next();
                    }
                }
                s => c.filter = Some(s.to_owned()),
            }
        }
        c
    }

    /// Sets the per-benchmark measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_id();
        run_one(self, None, &id, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling here is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let name = self.name.clone();
        run_one(self.criterion, Some(&name), &id, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id();
        let name = self.name.clone();
        run_one(self.criterion, Some(&name), &id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(c: &mut Criterion, group: Option<&str>, id: &str, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if let Some(filter) = &c.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: c.test_mode,
        measurement: c.measurement,
        last_ns: 0.0,
    };
    f(&mut b);
    if c.test_mode {
        println!("test {full} ... ok");
    } else {
        println!("{full:<48} time: {}", format_ns(b.last_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_times() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut ran = 0u64;
        c.bench_function("once", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("capture", 20).into_id(), "capture/20");
        assert_eq!(BenchmarkId::from_parameter(5).into_id(), "5");
    }
}
