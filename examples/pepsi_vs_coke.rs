//! The paper's headline hard case: telling Pepsi from Coke without a taste.
//!
//! ```text
//! cargo run --example pepsi_vs_coke --release
//! ```
//!
//! The two colas differ only in their trace acid/ion balance, so their
//! material features sit a few percent apart — this example shows the Ω̄
//! clusters and the resulting pairwise accuracy.

use rand::{Rng, SeedableRng};
use wimi::core::{MaterialDatabase, MaterialFeature, WiMi, WiMiConfig};
use wimi::dsp::stats::{mean, std_dev};
use wimi::phy::csi::CsiSource;
use wimi::phy::material::Liquid;
use wimi::phy::scenario::{Scenario, Simulator};
use wimi::phy::units::Meters;

/// One measurement with the operator's re-seat-and-retry protocol.
fn measure(
    extractor: &WiMi,
    liquid: Liquid,
    seed: u64,
    rng: &mut rand::rngs::StdRng,
) -> Option<MaterialFeature> {
    for attempt in 0..4u64 {
        let mut builder = Scenario::builder();
        builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.5..0.5)));
        let mut sim = Simulator::new(builder.build(), seed * 31 + attempt * 7919);
        let baseline = sim.capture(30);
        sim.set_liquid(Some(liquid.into()));
        let target = sim.capture(30);
        if let Ok(f) = extractor.extract_feature(&baseline, &target) {
            return Some(f);
        }
    }
    None
}

fn main() {
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    // Collect 20 measurements per cola and show the clusters.
    let mut db = MaterialDatabase::new();
    for liquid in [Liquid::Pepsi, Liquid::Coke] {
        let mut omegas = Vec::new();
        for trial in 0..20u64 {
            if let Some(f) = measure(&extractor, liquid, 1000 + trial, &mut rng) {
                omegas.push(f.omega_mean());
                db.add(liquid.name(), f);
            }
        }
        println!(
            "{:<6}: omega = {:.4} ± {:.4}  ({} measurements)",
            liquid.name(),
            mean(&omegas),
            std_dev(&omegas),
            omegas.len()
        );
    }

    let mut wimi = WiMi::new(WiMiConfig::default());
    wimi.train(&db);

    // Blind test.
    let mut correct = 0usize;
    let mut total = 0usize;
    for trial in 0..15u64 {
        for liquid in [Liquid::Pepsi, Liquid::Coke] {
            if let Some(f) = measure(&extractor, liquid, 90_000 + trial, &mut rng) {
                let label = wimi.classify_feature(&f).expect("trained");
                total += 1;
                correct += (db.name(label) == liquid.name()) as usize;
            }
        }
    }
    println!(
        "\nPepsi-vs-Coke accuracy: {correct}/{total} = {:.0}% (paper: >90%)",
        100.0 * correct as f64 / total as f64
    );
}
