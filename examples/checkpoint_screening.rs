//! Checkpoint screening: flag suspicious liquids among benign ones.
//!
//! ```text
//! cargo run --example checkpoint_screening --release
//! ```
//!
//! The intro of the paper motivates security screening. This example
//! trains WiMi on a "benign" set plus a high-conductivity "flagged"
//! class (a strong brine standing in for a restricted liquid), then
//! screens a stream of unknown containers — including a foil-wrapped
//! (metal) container, which the system must refuse rather than guess.

use rand::{Rng, SeedableRng};
use wimi::core::{MaterialDatabase, MaterialFeature, WiMi, WiMiConfig};
use wimi::phy::csi::CsiSource;
use wimi::phy::material::{ContainerMaterial, Liquid, SaltwaterConcentration};
use wimi::phy::scenario::{Beaker, LiquidSpec, Scenario, Simulator};
use wimi::phy::units::Meters;

fn measure(
    extractor: &WiMi,
    spec: &LiquidSpec,
    metal: bool,
    seed: u64,
    rng: &mut rand::rngs::StdRng,
) -> Option<MaterialFeature> {
    for attempt in 0..4u64 {
        let mut builder = Scenario::builder();
        builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.4..0.4)));
        if metal {
            builder.beaker(Beaker::paper_default().with_material(ContainerMaterial::Metal));
        }
        let mut sim = Simulator::new(builder.build(), seed * 131 + attempt * 8387);
        let baseline = sim.capture(20);
        sim.set_liquid(Some(spec.clone()));
        let target = sim.capture(20);
        if let Ok(f) = extractor.extract_feature(&baseline, &target) {
            return Some(f);
        }
    }
    None
}

fn main() {
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);

    // Benign catalog plus the flagged class.
    let classes: Vec<(String, LiquidSpec)> = vec![
        ("Water (benign)".into(), Liquid::PureWater.into()),
        ("Juice-like (benign)".into(), Liquid::SweetWater.into()),
        ("Milk (benign)".into(), Liquid::Milk.into()),
        (
            "FLAGGED (strong brine)".into(),
            LiquidSpec::saltwater(SaltwaterConcentration::new(8.0)),
        ),
    ];

    let mut db = MaterialDatabase::new();
    for trial in 0..12u64 {
        for (i, (name, spec)) in classes.iter().enumerate() {
            if let Some(f) = measure(
                &extractor,
                spec,
                false,
                100 + trial * 13 + i as u64,
                &mut rng,
            ) {
                db.add(name, f);
            }
        }
    }
    let mut wimi = WiMi::new(WiMiConfig::default());
    wimi.train(&db);

    // Screen a stream of containers.
    println!("screening containers:");
    let stream: Vec<(&str, LiquidSpec, bool)> = vec![
        ("bottle 1 (water)", Liquid::PureWater.into(), false),
        ("bottle 2 (sweet drink)", Liquid::SweetWater.into(), false),
        (
            "bottle 3 (brine!)",
            LiquidSpec::saltwater(SaltwaterConcentration::new(8.0)),
            false,
        ),
        ("bottle 4 (milk)", Liquid::Milk.into(), false),
        ("bottle 5 (foil-wrapped)", Liquid::PureWater.into(), true),
    ];
    for (i, (desc, spec, metal)) in stream.iter().enumerate() {
        match measure(&extractor, spec, *metal, 50_000 + i as u64, &mut rng) {
            Some(f) => {
                let label = wimi.classify_feature(&f).expect("trained");
                let name = db.name(label);
                let alarm = if name.starts_with("FLAGGED") {
                    "  << ALARM"
                } else {
                    ""
                };
                println!("  {desc:<26} -> {name}{alarm}");
            }
            None => {
                println!("  {desc:<26} -> MEASUREMENT REFUSED (no penetration — inspect manually)")
            }
        }
    }
}
