//! Milk freshness without opening the bottle.
//!
//! ```text
//! cargo run --example milk_freshness --release
//! ```
//!
//! The paper's intro motivates detecting expired milk contactlessly. As
//! milk sours, lactose ferments to lactic acid and ionic conductivity
//! climbs — a dielectric change WiMi can resolve. This example models
//! fresh / turning / sour milk as Debye variants and tracks the measured
//! material feature across the spoilage stages.

use rand::{Rng, SeedableRng};
use wimi::core::{MaterialDatabase, MaterialFeature, WiMi, WiMiConfig};
use wimi::dsp::stats::{mean, std_dev};
use wimi::phy::csi::CsiSource;
use wimi::phy::material::DebyeModel;
use wimi::phy::scenario::{LiquidSpec, Scenario, Simulator};
use wimi::phy::units::{Meters, Seconds};

/// Milk at a given spoilage stage: conductivity rises as lactic acid
/// accumulates (roughly +0.3 S/m per stage).
fn milk_at_stage(stage: usize) -> LiquidSpec {
    let sigma = 1.5 + 0.35 * stage as f64;
    LiquidSpec::custom(
        format!("milk stage {stage}"),
        DebyeModel::new(66.0, 5.0, Seconds::from_ps(12.0), sigma),
    )
}

fn measure(
    extractor: &WiMi,
    spec: &LiquidSpec,
    seed: u64,
    rng: &mut rand::rngs::StdRng,
) -> Option<MaterialFeature> {
    for attempt in 0..4u64 {
        let mut builder = Scenario::builder();
        builder.target_offset(Meters::from_cm(1.0 + rng.gen_range(-0.4..0.4)));
        let mut sim = Simulator::new(builder.build(), seed * 61 + attempt * 4099);
        let baseline = sim.capture(20);
        sim.set_liquid(Some(spec.clone()));
        let target = sim.capture(20);
        if let Ok(f) = extractor.extract_feature(&baseline, &target) {
            return Some(f);
        }
    }
    None
}

fn main() {
    let extractor = WiMi::new(WiMiConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // Show the feature drifting with spoilage.
    println!("material feature vs spoilage stage:");
    for stage in 0..5 {
        let spec = milk_at_stage(stage);
        let mut omegas = Vec::new();
        for trial in 0..10u64 {
            if let Some(f) = measure(&extractor, &spec, 300 + stage as u64 * 17 + trial, &mut rng) {
                omegas.push(f.omega_mean());
            }
        }
        println!(
            "  stage {stage} (σ = {:.2} S/m): omega = {:.4} ± {:.4}",
            1.5 + 0.35 * stage as f64,
            mean(&omegas),
            std_dev(&omegas)
        );
    }

    // Fresh-vs-sour screening.
    let mut db = MaterialDatabase::new();
    for trial in 0..12u64 {
        for (name, stage) in [("fresh", 0usize), ("sour", 4)] {
            if let Some(f) = measure(
                &extractor,
                &milk_at_stage(stage),
                700 + trial * 7 + stage as u64,
                &mut rng,
            ) {
                db.add(name, f);
            }
        }
    }
    let mut wimi = WiMi::new(WiMiConfig::default());
    wimi.train(&db);

    let mut correct = 0usize;
    let mut total = 0usize;
    for trial in 0..10u64 {
        for (name, stage) in [("fresh", 0usize), ("sour", 4)] {
            if let Some(f) = measure(
                &extractor,
                &milk_at_stage(stage),
                40_000 + trial * 3 + stage as u64,
                &mut rng,
            ) {
                let label = wimi.classify_feature(&f).expect("trained");
                total += 1;
                correct += (db.name(label) == name) as usize;
            }
        }
    }
    println!(
        "\nfresh-vs-sour accuracy: {correct}/{total} = {:.0}%",
        100.0 * correct as f64 / total.max(1) as f64
    );
}
