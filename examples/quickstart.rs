//! Quickstart: train WiMi on three liquids and identify an unseen sample.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use wimi::core::{MaterialDatabase, WiMi, WiMiConfig};
use wimi::phy::csi::CsiSource;
use wimi::phy::material::Liquid;
use wimi::phy::scenario::{Scenario, Simulator};

fn main() {
    // A lab deployment: router 2 m from a 3-antenna receiver, the paper's
    // 14.3 cm plastic beaker on the line-of-sight path.
    let liquids = [Liquid::PureWater, Liquid::Milk, Liquid::Oil];
    let extractor = WiMi::new(WiMiConfig::default());

    // --- Training: measure each liquid a few times.
    // Each measurement is the paper's protocol: capture CSI with the empty
    // beaker (baseline), pour the liquid, capture again.
    let mut db = MaterialDatabase::new();
    for trial in 0..10u64 {
        for liquid in liquids {
            let mut sim = Simulator::new(Scenario::builder().build(), 100 + trial);
            let baseline = sim.capture(20);
            sim.set_liquid(Some(liquid.into()));
            let target = sim.capture(20);
            match extractor.extract_feature(&baseline, &target) {
                Ok(feature) => {
                    println!(
                        "train {:<10} trial {trial}: omega = {:.4} (gamma = {})",
                        liquid.name(),
                        feature.omega_mean(),
                        feature.gamma
                    );
                    db.add(liquid.name(), feature);
                }
                Err(e) => println!(
                    "train {:<10} trial {trial}: re-measure ({e})",
                    liquid.name()
                ),
            }
        }
    }

    let mut wimi = WiMi::new(WiMiConfig::default());
    wimi.train(&db);

    // --- Identification of unseen measurements.
    println!("\nidentifying unseen samples:");
    let mut correct = 0;
    let mut total = 0;
    for trial in 0..5u64 {
        for liquid in liquids {
            let mut sim = Simulator::new(Scenario::builder().build(), 9_000 + trial);
            let baseline = sim.capture(20);
            sim.set_liquid(Some(liquid.into()));
            let target = sim.capture(20);
            match wimi.identify(&baseline, &target) {
                Ok(id) => {
                    let ok = id.material == liquid.name();
                    total += 1;
                    correct += ok as usize;
                    println!(
                        "  truth {:<10} -> predicted {:<10} {}",
                        liquid.name(),
                        id.material,
                        if ok { "✓" } else { "✗" }
                    );
                }
                Err(e) => println!(
                    "  truth {:<10} -> measurement rejected ({e})",
                    liquid.name()
                ),
            }
        }
    }
    println!("\naccuracy: {correct}/{total}");
}
